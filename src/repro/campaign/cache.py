"""Offline-artifact caching for campaigns: whole-artifact and stage-granular.

The paper's amortization argument (§IV-A) is that the expensive generic
stage runs *once per design* while every debugging turn pays only the
microsecond-scale online specialization.  Two cache granularities lift
that from "once per process" to "once per content":

* :class:`OfflineCache` — PR 1's **whole-artifact** cache: one entry per
  ``(design BLIF, full flow config, flow version)`` key
  (:func:`repro.core.flow.offline_cache_key`).  Any config knob change
  misses and rebuilds everything.  Now a thin wrapper over an
  :class:`~repro.pipeline.ArtifactStore` with the single pseudo-stage
  ``"offline"``.
* :class:`~repro.pipeline.ArtifactStore` — the **stage-granular** store
  of the compile pipeline: each stage (cleanup, initial-map,
  signal-parameterisation, tcon-map, pack, place, route, bitgen) is keyed
  by exactly the config fields it reads plus its upstream keys, so a warm
  single-knob change rebuilds only the invalidated suffix of the graph.

:func:`resolve_offline` is the one public entry point that accepts
either (or ``None`` for a cold build) and returns the offline artifact —
what the orchestrator, the CLI and library users call.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Any, Callable, Mapping

from repro.core.flow import (
    DebugFlowConfig,
    OfflineStage,
    offline_cache_key,
    run_generic_stage,
)
from repro.netlist.network import LogicNetwork
from repro.pipeline import ArtifactStore, StageStats, StoreStats

__all__ = [
    "CacheStats",
    "OfflineCache",
    "ArtifactStore",
    "StoreStats",
    "resolve_offline",
]

#: Back-compat alias: whole-artifact cache stats are per-stage stats of
#: the single pseudo-stage ``"offline"``.
CacheStats = StageStats

#: The pseudo-stage name whole-artifact entries live under.
OFFLINE_STAGE = "offline"

Builder = Callable[[LogicNetwork, DebugFlowConfig], OfflineStage]


class OfflineCache:
    """Two-level (memory, disk) whole-artifact cache of offline stages.

    Parameters
    ----------
    cache_dir:
        Optional directory for persistence across processes and campaign
        invocations; created on demand.  ``None`` keeps the cache purely
        in-memory.
    keep_in_memory:
        Whether disk-loaded and freshly built artifacts are retained in the
        in-process map (the default; disable to bound memory on very large
        campaigns while still deduplicating via disk).
    store:
        Optional pre-built :class:`~repro.pipeline.ArtifactStore` to share
        storage and stats with (entries live under the ``"offline"``
        pseudo-stage); by default one is created from ``cache_dir``.

    Entries never expire: a key embeds the full design content, the flow
    configuration and :data:`~repro.core.flow.FLOW_CACHE_VERSION`, so a
    stale entry is unreachable rather than wrong.  For *incremental*
    caching — reusing unaffected stages across config changes — use an
    :class:`~repro.pipeline.ArtifactStore` directly (see
    :func:`resolve_offline`).
    """

    def __init__(
        self,
        cache_dir: str | None = None,
        keep_in_memory: bool = True,
        store: ArtifactStore | None = None,
    ) -> None:
        self.store = store or ArtifactStore(
            cache_dir=cache_dir, keep_in_memory=keep_in_memory
        )
        self._legacy_checked: set[str] = set()

    @property
    def cache_dir(self) -> str | None:
        return self.store.cache_dir

    @property
    def keep_in_memory(self) -> bool:
        return self.store.keep_in_memory

    @property
    def stats(self) -> StageStats:
        """Hit/miss accounting (the ``"offline"`` pseudo-stage's stats)."""
        return self.store.stats.for_stage(OFFLINE_STAGE)

    def key(
        self,
        net: LogicNetwork,
        config: DebugFlowConfig | None = None,
        *,
        extra: tuple = (),
    ) -> str:
        """The whole-artifact content key for ``(net, config, extra)``."""
        return offline_cache_key(net, config, extra=extra)

    def get(self, key: str, *, group: str | None = None) -> OfflineStage | None:
        """Look up an artifact by key; ``None`` on miss (stats updated).

        ``group`` optionally identifies the *design* behind the lookup
        (:func:`~repro.pipeline.source_key` of the network) so the store
        can count "same design, changed config" as an invalidation but a
        genuinely-new design as a cold build.
        """
        if self.cache_dir is not None and key not in self._legacy_checked:
            self._legacy_checked.add(key)
            self._migrate_legacy(key)
        found = self.store.get(
            OFFLINE_STAGE, key, expect=OfflineStage, group=group
        )
        return found.value if found is not None else None

    def _migrate_legacy(self, key: str) -> None:
        """Move a PR 1-layout entry (``<cache_dir>/<key>.pkl``) into place.

        Done once per key, *before* the counted store lookup, so a
        migrated entry is served as an ordinary disk hit — type-checked
        and accounted by the store itself, with no stats surgery here.
        """
        if self.cache_dir is None:
            return
        legacy = os.path.join(self.cache_dir, f"{key}.pkl")
        if not os.path.exists(legacy):
            return
        new = self._path(key)
        try:
            os.makedirs(os.path.dirname(new), exist_ok=True)
            if os.path.exists(new):
                os.unlink(legacy)
            else:
                os.replace(legacy, new)
        except OSError:
            pass

    def put(self, key: str, stage: OfflineStage) -> OfflineStage:
        """Store ``stage`` under ``key`` (memory and, if configured, disk)."""
        stage = replace(stage, cache_key=key)
        self.store.put(OFFLINE_STAGE, key, stage)
        return stage

    def get_or_run(
        self,
        net: LogicNetwork,
        config: DebugFlowConfig | None = None,
        *,
        extra: tuple = (),
        builder: Builder | None = None,
    ) -> tuple[OfflineStage, bool]:
        """Return the cached artifact for ``net``, building it on a miss.

        ``builder`` defaults to :func:`~repro.core.flow.run_generic_stage`;
        the campaign layer passes a builder that additionally runs the
        physical back-end (with a matching ``extra`` discriminator).
        Returns ``(artifact, was_hit)``.
        """
        from repro.pipeline.graph import source_key

        config = config or DebugFlowConfig()
        key = self.key(net, config, extra=extra)
        stage = self.get(key, group=source_key(net))
        if stage is not None:
            return stage, True
        stage = (builder or run_generic_stage)(net, config)
        return self.put(key, stage), False

    def as_offline_fn(self) -> Builder:
        """Adapter for :func:`repro.analysis.experiments.run_benchmark_columns`.

        Lets the experiment drivers share this cache's artifacts instead of
        re-running the generic stage per process.
        """

        def fn(net: LogicNetwork, config: DebugFlowConfig) -> OfflineStage:
            return self.get_or_run(net, config)[0]

        return fn

    def clear(self) -> None:
        """Drop in-memory entries (persisted files are left untouched)."""
        self.store.clear()

    def __len__(self) -> int:
        """In-memory whole-artifact entries (this cache's pseudo-stage
        only — a shared store's other stages are not counted)."""
        return self.store.count(OFFLINE_STAGE)

    def _path(self, key: str) -> str:
        return self.store._path(OFFLINE_STAGE, key)


def resolve_offline(
    net: LogicNetwork,
    config: DebugFlowConfig | None = None,
    *,
    cache: "OfflineCache | ArtifactStore | None" = None,
    with_physical: bool = False,
    params: Mapping[str, Any] | None = None,
) -> tuple[OfflineStage, bool]:
    """Resolve the offline artifact for ``net`` through any cache flavor.

    The one public entry point the orchestrator, the CLI and library users
    share (replacing the private ``_build_offline`` of PR 1):

    * ``cache=None`` — cold: run the generic stage (and, with
      ``with_physical``, the physical back-end) unconditionally;
    * ``cache=OfflineCache(...)`` — whole-artifact granularity: one
      lookup under :func:`~repro.core.flow.offline_cache_key` (with the
      ``"physical"`` extra discriminator when applicable);
    * ``cache=ArtifactStore(...)`` — stage granularity: run the compile
      stage graph against the store, reusing every stage whose
      content-addressed key is unchanged.

    ``params`` (per-stage parameters — a ``taps`` override, placement
    ``seed``...) are honored on every path: the stage-granular store folds
    them into the affected stage keys, the whole-artifact key carries them
    as an ``extra`` discriminator, and cold builds pass them to the graph.

    Returns ``(artifact, was_hit)``; for the stage-granular path
    ``was_hit`` means *every* stage was served from the store (a partial
    reuse counts as a build, with the store's per-stage stats telling the
    detailed story).
    """
    from repro.pipeline import assemble_offline, compile_design

    config = config or DebugFlowConfig()
    if isinstance(cache, ArtifactStore):
        result = compile_design(
            net,
            config,
            store=cache,
            with_physical=with_physical,
            params=params,
        )
        return assemble_offline(result), result.full_hit

    def build(n: LogicNetwork, c: DebugFlowConfig) -> OfflineStage:
        return assemble_offline(
            compile_design(n, c, with_physical=with_physical, params=params)
        )

    if cache is None:
        return build(net, config), False
    extra = ("physical",) if with_physical else ()
    if params:
        from repro.pipeline import canonical_param

        extra = extra + (f"params={canonical_param(dict(params))!r}",)
    return cache.get_or_run(net, config, extra=extra, builder=build)
