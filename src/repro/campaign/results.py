"""Structured results of campaign runs.

Every scenario produces one :class:`ScenarioResult` — a flat, picklable
record of what happened (status, localization outcome, per-phase timings
via :class:`~repro.util.timing.PhaseTimer`, modeled online overhead) that
travels back from worker processes.  :class:`CampaignReport` aggregates
them and renders through :func:`repro.analysis.reporting.
render_campaign_report`, keeping one reporting surface for experiments and
campaigns alike.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.analysis.reporting import render_campaign_report, save_result

__all__ = ["STATUSES", "ScenarioResult", "CampaignReport"]

#: Possible scenario outcomes:
#:
#: ``localized``   the walk's bug region contains the ground-truth site;
#: ``missed``      the walk converged elsewhere (or ran out of turns);
#: ``undetected``  the bug never diverged at a primary output within the
#:                 horizon on the *emulated* design — the paper's motivating
#:                 observability problem;
#: ``error``       the scenario raised; see ``error``.
STATUSES = ("localized", "missed", "undetected", "error")


@dataclass
class ScenarioResult:
    """Outcome and accounting for one campaign scenario."""

    scenario: str
    design: str
    kind: str
    status: str
    truth: str = ""
    """Ground-truth bug site (fault signal or mutated gate)."""
    suspect: str = ""
    region_size: int = 0
    failing_po: str = ""
    fail_cycle: int = -1
    turns: int = 0
    signals_checked: int = 0
    offline_cache_hit: bool = False
    offline_ok: bool = True
    """False when the offline stage itself failed (no artifact was built)."""
    offline_s: float = 0.0
    """Wall-clock the orchestrator spent obtaining this scenario's offline
    artifact (≈0 on a cache hit)."""
    setup_s: float = 0.0
    golden_s: float = 0.0
    detect_s: float = 0.0
    localize_s: float = 0.0
    online_s: float = 0.0
    modeled_overhead_s: float = 0.0
    """Modeled device-side specialization time summed over all turns."""
    frames_touched: int = 0
    lane: int = 0
    """SIMD lane this scenario occupied in its batch's packed emulation
    (0 on the serial path).  Execution placement, not an outcome — kept
    out of :meth:`outcome` so lane-batched and serial campaigns diff
    clean."""
    lane_batch: int = 1
    """Lanes in the scenario's batch (1 = solo / serial path)."""
    error: str = ""

    def as_record(self) -> dict:
        """Plain-dict view (what the reporting layer consumes)."""
        return asdict(self)

    def outcome(self) -> tuple:
        """The deterministic fields — identical across serial/parallel runs
        and across repeated campaigns (timings excluded)."""
        return (
            self.scenario,
            self.design,
            self.kind,
            self.status,
            self.truth,
            self.suspect,
            self.region_size,
            self.failing_po,
            self.fail_cycle,
            self.turns,
            self.signals_checked,
            self.frames_touched,
        )


@dataclass
class CampaignReport:
    """Aggregated outcome of one campaign run."""

    results: list[ScenarioResult]
    wall_s: float = 0.0
    workers: int = 1
    offline_workers: int = 1
    """Effective offline-build parallelism (1 = serial builds, or the
    pool fell back / every design was warm)."""
    offline_total_s: float = 0.0
    offline_wall_s: float = 0.0
    """Wall-clock of the whole offline phase; less than
    ``offline_total_s`` when cold designs built concurrently."""
    offline_stage_s: dict[str, float] = field(default_factory=dict)
    """Seconds spent *building* each offline stage this run (cache hits
    excluded), summed across designs — the per-stage cost breakdown
    behind ``offline_total_s``."""
    online_total_s: float = 0.0
    cache_stats: dict | None = None
    """Snapshot of the cache's stats ``as_dict()`` — whole-artifact
    :class:`~repro.campaign.cache.CacheStats`, or a stage-granular
    :class:`~repro.pipeline.StoreStats` including a ``per_stage``
    breakdown.  ``None`` when the campaign ran cold, without a cache."""
    lane_width: int = 1
    """Configured scenarios-per-word limit of the online engine."""
    lane_batches: list[int] = field(default_factory=list)
    """Lane occupancy per online batch (empty on the serial path)."""
    intra_design_workers: int = 0
    """Intra-design parallelism the campaign ran with (0 = historical
    serial algorithms; ``>= 1`` = level-wave priority-cut mapping, plus
    region-parallel placement + round-parallel routing on physical
    campaigns, fanning waves onto the shared pool — outcomes
    byte-identical across any ``>= 1`` value)."""
    notes: list[str] = field(default_factory=list)
    schedule: str = "dataflow"
    """Execution discipline the campaign ran under: ``"dataflow"``
    (offline builds and online lane batches overlapped on one shared
    pool) or ``"barrier"`` (historical offline-then-online ordering)."""
    sched_wall_s: float = 0.0
    """Wall-clock the dataflow scheduler's event loop ran — the
    critical-path time all task execution (offline and online) fit in."""
    overlap_ratio: float = 0.0
    """Fraction of ``sched_wall_s`` during which offline and online work
    executed simultaneously — 0 under the barrier schedule (or with
    nothing to overlap), approaching the smaller phase's share of the
    wall when the dataflow schedule hides it behind the larger."""
    stage_concurrency: dict[str, float] = field(default_factory=dict)
    """Per-stage busy-seconds / span-seconds over the campaign (pooled
    builds only; includes an ``"online"`` pseudo-stage).  Values above 1
    mean that stage ran concurrently across designs."""
    retries: int = 0
    """Supervised task retries performed (timeouts + task failures;
    retries change wall clock only, never outcomes)."""
    timeouts: int = 0
    """Pooled task attempts that exceeded their wall-clock budget."""
    pool_respawns: int = 0
    """Worker-pool teardown/respawn cycles the supervisor performed."""
    resumed_scenarios: int = 0
    """Scenarios replayed from the campaign journal instead of re-run."""
    journal_path: str = ""
    """Checkpoint journal backing this campaign ('' = journaling off)."""

    def resilience(self) -> dict:
        """Supervision counters + checkpoint state, for the report's
        ``resilience:`` line and the benchmark JSON."""
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_respawns": self.pool_respawns,
            "resumed_scenarios": self.resumed_scenarios,
            "journal_path": self.journal_path,
        }

    def aggregate(self) -> dict:
        """Campaign aggregates — single source of truth is
        :func:`repro.analysis.reporting.aggregate_campaign`."""
        from repro.analysis.reporting import aggregate_campaign

        return aggregate_campaign([r.as_record() for r in self.results])

    def counts(self) -> dict[str, int]:
        return self.aggregate()["counts"]

    @property
    def n_scenarios(self) -> int:
        return len(self.results)

    @property
    def localization_rate(self) -> float:
        return self.aggregate()["localization_rate"]

    def outcomes(self) -> list[tuple]:
        """Deterministic per-scenario outcomes, in scenario order."""
        return [r.outcome() for r in self.results]

    def render(self) -> str:
        """Human-readable campaign report (tables + aggregate lines)."""
        return render_campaign_report(
            [r.as_record() for r in self.results],
            wall_s=self.wall_s,
            workers=self.workers,
            cache=self.cache_stats,
            lane_width=self.lane_width,
            lane_batches=self.lane_batches,
            offline_workers=self.offline_workers,
            offline_wall_s=self.offline_wall_s,
            offline_stage_s=self.offline_stage_s,
            intra_design_workers=self.intra_design_workers,
            notes=self.notes,
            schedule=self.schedule,
            sched_wall_s=self.sched_wall_s,
            overlap_ratio=self.overlap_ratio,
            stage_concurrency=self.stage_concurrency,
            resilience=self.resilience(),
        )

    def save(self, name: str = "campaign", base: str | None = None) -> str:
        """Persist the rendered report to ``results/<name>.txt``."""
        return save_result(name, self.render(), base)
