"""Command-line entry point: ``python -m repro.campaign``.

Builds a scenario batch for the requested designs, runs the campaign and
prints (optionally persists) the aggregated report.  Examples::

    # 3 stuck-at scenarios on each of two designs, stage-granular cache
    python -m repro.campaign --designs stereov. diffeq2 --per-design 3

    # mixed fault kinds, 4 online workers, artifacts persisted on disk
    python -m repro.campaign --kind mixed --workers 4 --cache-dir .repro-cache

    # PR 1's whole-artifact cache granularity instead of per-stage
    python -m repro.campaign --whole-artifact --cache-dir .repro-cache

    # cold baseline (no offline amortization), report saved to results/
    python -m repro.campaign --no-cache --save campaign_cold

    # CI cache-correctness: run twice on one dir; the second run must be
    # all stage-hits and produce identical deterministic outcomes
    python -m repro.campaign --cache-dir /tmp/c --outcomes-json /tmp/a.json
    python -m repro.campaign --cache-dir /tmp/c --outcomes-json /tmp/b.json \
        --assert-warm

    # checkpointed campaign: if this process is killed mid-run, the
    # second command replays the journaled scenarios and finishes the
    # rest — outcomes byte-identical to an uninterrupted run
    python -m repro.campaign --cache-dir /tmp/c --campaign-id nightly
    python -m repro.campaign --cache-dir /tmp/c --resume nightly

Exit status: 0 on success, 1 when any scenario ended in an error result
(a failing design is isolated by default — ``--keep-going`` — or aborts
the batch under ``--fail-fast``), 2 on usage errors, 3 when
``--assert-warm`` saw a cache miss.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.campaign.cache import ArtifactStore, OfflineCache, resolve_offline
from repro.campaign.orchestrator import (
    CampaignConfig,
    _offline_group_key,
    prebuild_offline,
    run_campaign,
)
from repro.netlist.compiled import BACKENDS, numpy_available
from repro.errors import WorkloadError
from repro.workloads.scenarios import (
    DebugScenario,
    mutation_scenarios,
    stuck_at_scenarios,
)
from repro.workloads.suites import PAPER_SUITE

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Batch debug campaign over many (design, bug) scenarios.",
    )
    p.add_argument(
        "--designs",
        nargs="+",
        default=["stereov."],
        metavar="NAME",
        help=f"benchmark designs (known: {', '.join(sorted(PAPER_SUITE))})",
    )
    p.add_argument(
        "--per-design",
        type=int,
        default=3,
        help="bug scenarios generated per design (default 3)",
    )
    p.add_argument(
        "--kind",
        choices=["stuck-at", "mutation", "mixed"],
        default="stuck-at",
        help="emulation-level faults (amortized offline stage), netlist "
        "mutations (one offline run each), or half/half",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="online-phase worker processes (default 1 = serial)",
    )
    p.add_argument(
        "--offline-workers",
        type=int,
        default=1,
        metavar="N",
        help="offline-phase build processes: distinct cold designs "
        "pack/place/route concurrently, artifacts landing under the same "
        "content-addressed cache keys as serial builds (default 1 = "
        "serial; outcomes are byte-identical either way)",
    )
    p.add_argument(
        "--intra-design-workers",
        type=int,
        default=0,
        metavar="N",
        help="intra-design parallelism: N >= 1 switches to level-wave "
        "priority-cut mapping (always) plus, with --physical, the "
        "region-parallel placer and round-parallel router, fanning waves "
        "onto the shared pool with N slots (default 0 = historical "
        "serial algorithms; outcomes are byte-identical across any "
        "N >= 1)",
    )
    p.add_argument(
        "--lane-width",
        type=int,
        default=64,
        metavar="N",
        help="scenarios packed per emulation batch, >= 1 (default 64; "
        "widths beyond 64 span multiple uint64 words); 1 runs the "
        "historical one-session-per-scenario path — outcomes are "
        "byte-identical at every width (the CI lane-equivalence job "
        "diffs them)",
    )
    p.add_argument(
        "--schedule",
        choices=["dataflow", "barrier"],
        default="dataflow",
        help="campaign execution discipline: 'dataflow' (default) overlaps "
        "offline builds with online lane batches on one shared worker "
        "pool — a design's batches launch as soon as its artifact lands; "
        "'barrier' keeps the historical offline-then-online phase "
        "ordering (outcomes and cache stats are identical either way)",
    )
    p.add_argument(
        "--sim-backend",
        choices=("auto",) + BACKENDS,
        default="auto",
        help="compiled simulation kernel backend: 'python' (big-int "
        "kernels), 'numpy' (vectorized whole-array kernels — the wide-"
        "lane fast path), or 'auto' (default: numpy at lane widths >= "
        "256 when numpy is installed, python otherwise; the "
        "REPRO_SIM_BACKEND environment variable overrides auto). "
        "Outcomes are byte-identical across backends",
    )
    p.add_argument(
        "--interpreted",
        action="store_true",
        help="run the online phase on the reference per-gate interpreter "
        "instead of the compiled simulation kernels (escape hatch / "
        "benchmark baseline; outcomes are bit-identical)",
    )
    p.add_argument(
        "--synthetic-gates",
        type=int,
        default=None,
        metavar="N",
        help="replace --designs with one synthetic N-gate campaign design "
        "(sized freely — how the CI jobs build >64-scenario campaigns "
        "without a paper benchmark large enough)",
    )
    p.add_argument("--seed", type=int, default=2016)
    p.add_argument(
        "--horizon",
        type=int,
        default=64,
        help="stimulus cycles within which failures must appear (default 64)",
    )
    p.add_argument(
        "--max-turns",
        type=int,
        default=48,
        help="debugging-turn budget per localization (default 48)",
    )
    p.add_argument(
        "--physical",
        action="store_true",
        help="include pack/place/route + bitstream in the offline artifact "
        "(combinational designs only)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist offline artifacts under DIR (reused across runs)",
    )
    p.add_argument(
        "--whole-artifact",
        action="store_true",
        help="cache whole offline artifacts (PR 1 granularity) instead of "
        "the default per-stage store (incremental across config changes)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="run cold: every scenario pays its own offline stage",
    )
    p.add_argument(
        "--save",
        default=None,
        metavar="NAME",
        help="also write the report to results/NAME.txt",
    )
    p.add_argument(
        "--outcomes-json",
        default=None,
        metavar="PATH",
        help="write the deterministic per-scenario outcomes to PATH as "
        "JSON (timings excluded; identical across repeated runs)",
    )
    p.add_argument(
        "--assert-warm",
        action="store_true",
        help="exit with status 3 unless every cache lookup hit — the CI "
        "cache-correctness check for a second run on a warm --cache-dir",
    )
    p.add_argument(
        "--campaign-id",
        default=None,
        metavar="ID",
        help="checkpoint every finished scenario to an append-only "
        "journal under <cache-dir>/journal/ID.jsonl, so a killed "
        "campaign can be continued with --resume ID (requires "
        "--cache-dir)",
    )
    p.add_argument(
        "--resume",
        default=None,
        metavar="ID",
        help="resume campaign ID: replay scenarios already journaled "
        "under <cache-dir>/journal/ID.jsonl and run only the remainder "
        "— outcomes are byte-identical to an uninterrupted run",
    )
    p.add_argument(
        "--journal-fsync",
        action="store_true",
        help="fsync the journal after every appended scenario "
        "(crash-consistent against power loss, at an I/O cost)",
    )
    p.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per pooled task attempt; a timed-out "
        "task is retried (see --task-retries) then reported as an error "
        "result (default: no timeout)",
    )
    p.add_argument(
        "--task-retries",
        type=int,
        default=1,
        metavar="N",
        help="extra attempts for a task that timed out or crashed its "
        "worker (default 1; deterministic stage errors are never "
        "retried)",
    )
    fail = p.add_mutually_exclusive_group()
    fail.add_argument(
        "--keep-going",
        dest="fail_fast",
        action="store_false",
        help="isolate a failing design to its own scenarios' error "
        "results and keep running everything else (the default)",
    )
    fail.add_argument(
        "--fail-fast",
        dest="fail_fast",
        action="store_true",
        help="abort the whole campaign at the first failing design; "
        "pending scenarios complete as error placeholders (which are "
        "not journaled, so --resume recomputes them)",
    )
    p.set_defaults(fail_fast=False)
    return p


def _build_scenarios(
    args: argparse.Namespace, cache
) -> list[DebugScenario]:
    from repro.workloads import campaign_spec, generate_circuit, get_spec

    designs: list = list(args.designs)
    if args.synthetic_gates is not None:
        # one freely-sized synthetic design; scale the PI/PO interface
        # with the gate count so wide campaigns find enough taps
        n_gates = args.synthetic_gates
        designs = [
            campaign_spec(
                f"synthetic-{n_gates}",
                n_gates=n_gates,
                depth=8,
                n_pis=max(16, n_gates // 16),
                n_pos=max(8, n_gates // 32),
            )
        ]

    # Stuck-at screening needs each design's offline artifact (its tap
    # directory picks the fault sites) before any scenario exists.  Warm
    # the cache for every distinct design in one pass through the same
    # scheduler path the campaign's --offline-workers phase uses, and
    # keep the returned {cache key: artifact} map — screening consumes
    # those build results directly instead of probing the cache for
    # warmth again (mutation-only runs never need it: each mutation is
    # its own design content).
    prebuilt: dict = {}
    if args.kind != "mutation" and cache is not None:
        nets = []
        for design in designs:
            spec = get_spec(design) if isinstance(design, str) else design
            nets.append(generate_circuit(spec))
        prebuilt = prebuild_offline(
            nets,
            cache=cache,
            with_physical=args.physical,
            workers=args.offline_workers,
            intra_workers=args.intra_design_workers,
        )

    scenarios: list[DebugScenario] = []
    for design in designs:
        n = args.per_design
        kw = dict(seed=args.seed, horizon=args.horizon)

        def screening_offline():
            if cache is None:
                return None
            spec = get_spec(design) if isinstance(design, str) else design
            net = generate_circuit(spec)
            extras = (
                ("place_regions=8",)
                if args.intra_design_workers >= 1 and args.physical
                else ()
            )
            found = prebuilt.get(
                _offline_group_key(
                    net, CampaignConfig().flow, args.physical, extras
                )
            )
            if found is not None:
                return found
            # only a failed prebuild (e.g. physical back-end rejection)
            # falls through to a cache resolution here
            try:
                return resolve_offline(
                    net, cache=cache, with_physical=args.physical
                )[0]
            except Exception:
                # screening only needs the generic artifact; let the
                # campaign's offline phase surface the physical-stage
                # failure as a per-scenario error result
                return resolve_offline(net, cache=cache)[0]

        if args.kind == "stuck-at":
            scenarios += stuck_at_scenarios(
                design, n, offline=screening_offline(), **kw
            )
        elif args.kind == "mutation":
            scenarios += mutation_scenarios(design, n, **kw)
        else:
            n_mut = n // 2
            scenarios += stuck_at_scenarios(
                design, n - n_mut, offline=screening_offline(), **kw
            )
            if n_mut:
                scenarios += mutation_scenarios(design, n_mut, **kw)
    return scenarios


def _make_cache(args: argparse.Namespace):
    if args.no_cache:
        return None
    if args.whole_artifact:
        return OfflineCache(cache_dir=args.cache_dir)
    return ArtifactStore(cache_dir=args.cache_dir)


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.assert_warm and args.no_cache:
        print(
            "error: --assert-warm requires a cache (drop --no-cache)",
            file=sys.stderr,
        )
        return 2
    if args.resume is not None and args.campaign_id is not None:
        print(
            "error: --resume already names the campaign; drop --campaign-id",
            file=sys.stderr,
        )
        return 2
    campaign_id = args.resume if args.resume is not None else args.campaign_id
    if campaign_id is not None and (args.no_cache or args.cache_dir is None):
        print(
            "error: the campaign journal lives under the cache directory; "
            "--campaign-id/--resume require --cache-dir",
            file=sys.stderr,
        )
        return 2
    names = (
        [f"synthetic-{args.synthetic_gates}"]
        if args.synthetic_gates is not None
        else args.designs
    )
    print(
        f"generating {args.per_design} {args.kind} scenario(s) per design "
        f"for: {', '.join(names)}"
    )
    cache = _make_cache(args)
    try:
        scenarios = _build_scenarios(args, cache)
    except (KeyError, WorkloadError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2

    if args.lane_width < 1:
        print("error: --lane-width must be at least 1", file=sys.stderr)
        return 2
    if args.interpreted and args.lane_width > 64:
        print(
            "error: --interpreted is single-word; use --lane-width <= 64 "
            "(multi-word lanes need the compiled kernels)",
            file=sys.stderr,
        )
        return 2
    if args.interpreted and args.sim_backend != "auto":
        print(
            "error: --interpreted bypasses the compiled kernels; drop "
            "--sim-backend or drop --interpreted",
            file=sys.stderr,
        )
        return 2
    if args.sim_backend == "numpy" and not numpy_available():
        print(
            "error: --sim-backend numpy requires numpy, which is not "
            "importable in this environment",
            file=sys.stderr,
        )
        return 2
    config = CampaignConfig(
        workers=args.workers,
        offline_workers=args.offline_workers,
        with_physical=args.physical,
        intra_design_workers=args.intra_design_workers,
        max_turns=args.max_turns,
        lane_width=args.lane_width,
        interpreted=args.interpreted,
        backend=None if args.sim_backend == "auto" else args.sim_backend,
        schedule=args.schedule,
        task_timeout_s=args.task_timeout,
        task_retries=args.task_retries,
        fail_fast=args.fail_fast,
        campaign_id=campaign_id,
        resume=args.resume is not None,
        journal_fsync=args.journal_fsync,
    )
    try:
        report = run_campaign(scenarios, config=config, cache=cache)
    except FileNotFoundError as exc:
        print(
            f"error: --resume {campaign_id}: no journal found ({exc})",
            file=sys.stderr,
        )
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print()
    print(report.render())
    if args.save:
        path = report.save(args.save)
        print(f"\n[saved to {path}]")
    if args.outcomes_json:
        with open(args.outcomes_json, "w", encoding="utf-8") as fh:
            json.dump(report.outcomes(), fh, indent=2, default=str)
        print(f"[outcomes written to {args.outcomes_json}]")
    if args.assert_warm:
        misses = cache.stats.as_dict()["misses"]
        if misses:
            print(
                f"--assert-warm failed: {misses} cache miss(es) on a run "
                "that should have been fully warm",
                file=sys.stderr,
            )
            return 3
        print("[--assert-warm ok: every cache lookup hit]")
    return 1 if any(r.status == "error" for r in report.results) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
