"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can distinguish library failures from
programming mistakes with a single ``except`` clause.  The hierarchy mirrors
the flow stages: netlist handling, technology mapping, physical design
(pack/place/route), bitstream generation, and the parameterized-debug core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural or semantic problem with a logic network."""


class BlifParseError(NetlistError):
    """Malformed BLIF input.

    Attributes
    ----------
    line_no:
        1-based line number where the problem was detected, or ``None`` if
        the error is not tied to a specific line.
    """

    def __init__(self, message: str, line_no: int | None = None) -> None:
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class SimulationError(NetlistError):
    """Inconsistent stimulus or state during functional simulation."""


class MappingError(ReproError):
    """Technology mapping failed (e.g. unmappable node, bad K)."""


class ArchitectureError(ReproError):
    """Invalid FPGA architecture specification or device construction."""


class PackingError(ReproError):
    """Clustering could not fit the netlist into legal clusters."""


class PlacementError(ReproError):
    """Placement failed or produced an illegal result."""


class RoutingError(ReproError):
    """Routing failed to converge or produced an illegal route."""


class UnroutableError(RoutingError):
    """The router exhausted its iteration budget with congestion left."""


class BitstreamError(ReproError):
    """Bitstream generation / frame addressing failure."""


class ParameterError(ReproError):
    """Problem with parameter declarations or assignments."""


class SpecializationError(ReproError):
    """The SCG could not specialize a parameterized configuration."""


class DebugFlowError(ReproError):
    """Errors in the offline/online debug flow orchestration."""


class WorkloadError(ReproError):
    """Benchmark/workload generation failure."""
