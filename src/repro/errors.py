"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can distinguish library failures from
programming mistakes with a single ``except`` clause.  The hierarchy mirrors
the flow stages: netlist handling, technology mapping, physical design
(pack/place/route), bitstream generation, and the parameterized-debug core.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor

#: Executor failures that mean "the worker pool is unusable", not "the
#: submitted task is wrong": the pool could not start (sandboxes,
#: restricted containers), a worker process died (OOM-kill, SIGKILL), or
#: the executor broke mid-flight.  ``BrokenProcessPool`` subclasses
#: ``BrokenExecutor``, so this one tuple covers both the process-pool and
#: generic executor flavors.  Every pool consumer in the library
#: (:mod:`repro.pipeline.scheduler`, :mod:`repro.util.intra`) catches
#: exactly this tuple and degrades — respawn, retry or in-process
#: fallback — instead of crashing the campaign.
POOL_ERRORS: tuple = (OSError, PermissionError, BrokenExecutor)


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural or semantic problem with a logic network."""


class BlifParseError(NetlistError):
    """Malformed BLIF input.

    Attributes
    ----------
    line_no:
        1-based line number where the problem was detected, or ``None`` if
        the error is not tied to a specific line.
    """

    def __init__(self, message: str, line_no: int | None = None) -> None:
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class SimulationError(NetlistError):
    """Inconsistent stimulus or state during functional simulation."""


class MappingError(ReproError):
    """Technology mapping failed (e.g. unmappable node, bad K)."""


class ArchitectureError(ReproError):
    """Invalid FPGA architecture specification or device construction."""


class PackingError(ReproError):
    """Clustering could not fit the netlist into legal clusters."""


class PlacementError(ReproError):
    """Placement failed or produced an illegal result."""


class RoutingError(ReproError):
    """Routing failed to converge or produced an illegal route."""


class UnroutableError(RoutingError):
    """The router exhausted its iteration budget with congestion left."""


class BitstreamError(ReproError):
    """Bitstream generation / frame addressing failure."""


class ParameterError(ReproError):
    """Problem with parameter declarations or assignments."""


class SpecializationError(ReproError):
    """The SCG could not specialize a parameterized configuration."""


class DebugFlowError(ReproError):
    """Errors in the offline/online debug flow orchestration."""


class WorkloadError(ReproError):
    """Benchmark/workload generation failure."""
