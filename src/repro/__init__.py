"""repro — parameterized FPGA reconfiguration for efficient hardware debugging.

A from-scratch Python reproduction of Kourfali & Stroobandt, *"Efficient
Hardware Debugging using Parameterized FPGA Reconfiguration"* (IPDPSW
2016): a complete FPGA CAD flow (netlists, technology mapping, pack/place/
route, bitstreams) plus the paper's contribution — a parameterized debug
multiplexer network living in the FPGA's routing fabric, specialized in
micro-seconds instead of recompiled in hours.

Quick start::

    from repro import generate_circuit, get_spec, run_generic_stage, DebugSession

    net = generate_circuit(get_spec("stereov."))
    offline = run_generic_stage(net)          # §IV-A: the generic stage, once
    session = DebugSession(offline)           # §IV-B: the online stage
    session.observe(session.observable_signals[:4])
    session.run(64, stimulus=lambda cycle: {"pi0": cycle & 1})
    print(session.waveforms())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from importlib import import_module

from repro.errors import (
    ReproError,
    NetlistError,
    MappingError,
    RoutingError,
    ParameterError,
    SpecializationError,
    DebugFlowError,
)

__version__ = "1.0.0"

# The convenience re-exports below resolve lazily (PEP 562) so that
# importing one subpackage does not drag the whole flow in: the
# pure-python simulation path (``repro.netlist`` + ``repro.util``) stays
# importable on a numpy-free interpreter even though mapping, placement
# and the debug engine are hard numpy dependents.
_LAZY_EXPORTS = {
    "LogicNetwork": "repro.netlist",
    "TruthTable": "repro.netlist",
    "parse_blif": "repro.netlist",
    "parse_blif_file": "repro.netlist",
    "write_blif": "repro.netlist",
    "check_equivalent": "repro.netlist",
    "generate_circuit": "repro.workloads",
    "get_spec": "repro.workloads",
    "paper_suite": "repro.workloads",
    "inject_bug": "repro.workloads",
    "SimpleMap": "repro.mapping",
    "AbcMap": "repro.mapping",
    "TconMap": "repro.mapping",
    "MappingResult": "repro.mapping",
    "DebugFlowConfig": "repro.core",
    "DebugSession": "repro.core",
    "OfflineStage": "repro.core",
    "ParameterizedBitstream": "repro.core",
    "SpecializedConfigGenerator": "repro.core",
    "TraceBuffer": "repro.core",
    "Virtex5Model": "repro.core",
    "build_trace_network": "repro.core",
    "run_generic_stage": "repro.core",
    "run_conventional_flow": "repro.baselines",
    "RecompileModel": "repro.baselines",
    "LaneEngine": "repro.engine",
}


def __getattr__(name: str):
    module = _LAZY_EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: resolve each name at most once
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))

__all__ = [
    "ReproError",
    "NetlistError",
    "MappingError",
    "RoutingError",
    "ParameterError",
    "SpecializationError",
    "DebugFlowError",
    "LogicNetwork",
    "TruthTable",
    "parse_blif",
    "parse_blif_file",
    "write_blif",
    "check_equivalent",
    "generate_circuit",
    "get_spec",
    "paper_suite",
    "inject_bug",
    "SimpleMap",
    "AbcMap",
    "TconMap",
    "MappingResult",
    "DebugFlowConfig",
    "DebugSession",
    "LaneEngine",
    "OfflineStage",
    "ParameterizedBitstream",
    "SpecializedConfigGenerator",
    "TraceBuffer",
    "Virtex5Model",
    "build_trace_network",
    "run_generic_stage",
    "run_conventional_flow",
    "RecompileModel",
    "__version__",
]
