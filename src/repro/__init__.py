"""repro — parameterized FPGA reconfiguration for efficient hardware debugging.

A from-scratch Python reproduction of Kourfali & Stroobandt, *"Efficient
Hardware Debugging using Parameterized FPGA Reconfiguration"* (IPDPSW
2016): a complete FPGA CAD flow (netlists, technology mapping, pack/place/
route, bitstreams) plus the paper's contribution — a parameterized debug
multiplexer network living in the FPGA's routing fabric, specialized in
micro-seconds instead of recompiled in hours.

Quick start::

    from repro import generate_circuit, get_spec, run_generic_stage, DebugSession

    net = generate_circuit(get_spec("stereov."))
    offline = run_generic_stage(net)          # §IV-A: the generic stage, once
    session = DebugSession(offline)           # §IV-B: the online stage
    session.observe(session.observable_signals[:4])
    session.run(64, stimulus=lambda cycle: {"pi0": cycle & 1})
    print(session.waveforms())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.errors import (
    ReproError,
    NetlistError,
    MappingError,
    RoutingError,
    ParameterError,
    SpecializationError,
    DebugFlowError,
)
from repro.netlist import (
    LogicNetwork,
    TruthTable,
    parse_blif,
    parse_blif_file,
    write_blif,
    check_equivalent,
)
from repro.workloads import (
    generate_circuit,
    get_spec,
    paper_suite,
    inject_bug,
)
from repro.mapping import SimpleMap, AbcMap, TconMap, MappingResult
from repro.core import (
    DebugFlowConfig,
    DebugSession,
    OfflineStage,
    ParameterizedBitstream,
    SpecializedConfigGenerator,
    TraceBuffer,
    Virtex5Model,
    build_trace_network,
    run_generic_stage,
)
from repro.baselines import run_conventional_flow, RecompileModel
from repro.engine import LaneEngine

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "NetlistError",
    "MappingError",
    "RoutingError",
    "ParameterError",
    "SpecializationError",
    "DebugFlowError",
    "LogicNetwork",
    "TruthTable",
    "parse_blif",
    "parse_blif_file",
    "write_blif",
    "check_equivalent",
    "generate_circuit",
    "get_spec",
    "paper_suite",
    "inject_bug",
    "SimpleMap",
    "AbcMap",
    "TconMap",
    "MappingResult",
    "DebugFlowConfig",
    "DebugSession",
    "LaneEngine",
    "OfflineStage",
    "ParameterizedBitstream",
    "SpecializedConfigGenerator",
    "TraceBuffer",
    "Virtex5Model",
    "build_trace_network",
    "run_generic_stage",
    "run_conventional_flow",
    "RecompileModel",
    "__version__",
]
