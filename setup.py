"""Legacy setup shim.

The environment ships setuptools without the ``wheel`` package, so PEP-517
editable installs (which need ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` work; all real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
