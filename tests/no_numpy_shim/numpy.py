"""Import shim that masks numpy out of the interpreter.

The CI backend-parity matrix prepends this directory to ``PYTHONPATH``
so ``import numpy`` raises ImportError, proving the pure-python
simulation path (and the differential parity harness's python leg)
never quietly grows a numpy dependency.  Not importable as numpy by
accident: any real use fails immediately.
"""

raise ImportError("numpy masked out by tests/no_numpy_shim (backend-parity CI job)")
