"""Shared helpers for the cross-backend differential parity harness.

The compiled simulation kernels exist in two independent implementations
(the generated big-int python kernels and the vectorized numpy lowering),
next to the reference per-gate interpreter.  Differential testing treats
each as an independent oracle that must agree bit-for-bit; this module
supplies the two harness ingredients both test files and the CI
backend-parity matrix share:

* a **pure-python seeded network generator** — random ISOP-shaped
  networks over the full structural envelope (multi-fanin gates with
  arbitrary truth tables, repeated fanins, folded constants, latches) so
  the sweep is not limited to what the workload generator happens to
  emit;
* an **independent big-int reference evaluator** — walks the network's
  topo order evaluating ISOP covers directly, sharing no code with
  either compiled backend's lowering or the interpreter's array path.

Everything here is importable (and runnable) **without numpy**: the CI
matrix re-runs the pure-python parity cases against this reference with
numpy masked out, pinning that the python backend never quietly grows a
numpy dependency.
"""

from __future__ import annotations

import random

from repro.netlist.network import LogicNetwork, NodeKind
from repro.netlist.sop import truthtable_to_cover
from repro.netlist.truthtable import TruthTable

__all__ = [
    "random_network",
    "random_stimulus_ints",
    "random_override_ints",
    "reference_eval",
    "reference_sequential",
]


def random_network(
    seed: int,
    *,
    n_pis: int = 10,
    n_gates: int = 60,
    n_latches: int = 0,
    n_pos: int = 6,
    max_fanin: int = 3,
) -> LogicNetwork:
    """A seeded random network built gate by gate, pure python.

    Fanins are drawn with replacement from everything built so far (PIs,
    latch outputs, two folded constants, earlier gates), and each gate's
    function is a uniformly random truth table — so repeated literals,
    constant-0/1 functions (empty covers and tautology cubes) and deep
    reconvergence all occur naturally.  Latch drivers are drawn from the
    later half of the gates to give sequential state real depth.
    """
    rng = random.Random(seed)
    net = LogicNetwork(f"parity-{seed}")
    pool = [net.add_pi(f"pi{i}") for i in range(n_pis)]
    for i in range(n_latches):
        pool.append(net.add_latch(f"lq{i}", init=rng.randrange(2)))
    pool.append(net.add_const("k0", 0))
    pool.append(net.add_const("k1", 1))
    gates: list[int] = []
    for g in range(n_gates):
        k = rng.randint(1, max_fanin)
        fanins = [rng.choice(pool) for _ in range(k)]
        func = TruthTable(k, rng.getrandbits(1 << k))
        nid = net.add_gate(f"g{g}", fanins, func)
        pool.append(nid)
        gates.append(nid)
    for latch in net.latches:
        driver = rng.choice(gates[len(gates) // 2 :])
        net.set_latch_driver(latch.q, driver)
    for nid in rng.sample(gates, min(n_pos, len(gates))):
        net.add_po(net.node_name(nid))
    return net


def random_stimulus_ints(
    rng: random.Random, net: LogicNetwork, n_words: int
) -> dict[int, int]:
    """One cycle of word-packed integer stimulus for every PI."""
    return {pi: rng.getrandbits(64 * n_words) for pi in net.pis}


def random_override_ints(
    rng: random.Random,
    net: LogicNetwork,
    n_words: int,
    *,
    n_nodes: int = 3,
    lane_masked: bool = True,
) -> dict[int, tuple[int, int]]:
    """Random ``node -> (forced, mask)`` integer overrides.

    Draws across every node kind (gates, PIs, latch outputs, constants) —
    the fault-injection surface.  ``lane_masked=False`` forces all lanes
    (a full replacement, mask = all-ones), the mutation-style override.
    """
    full = (1 << (64 * n_words)) - 1
    picks = rng.sample(range(net.n_nodes), min(n_nodes, net.n_nodes))
    return {
        nid: (
            rng.getrandbits(64 * n_words),
            rng.getrandbits(64 * n_words) if lane_masked else full,
        )
        for nid in picks
    }


def reference_eval(
    net: LogicNetwork,
    source_ints: "dict[int, int]",
    n_words: int,
    overrides: "dict[int, tuple[int, int]] | None" = None,
) -> dict[int, int]:
    """Independent big-int evaluation of every node for one settle.

    Walks the topo order evaluating each gate's ISOP cover literal by
    literal over word-packed integers.  Overrides are ``(forced, mask)``
    integer pairs blended as ``(clean & ~mask) | (forced & mask)`` — on
    any node kind, exactly the engine's fault semantics.  Shares no
    evaluation code with the backends under test.
    """
    full = (1 << (64 * n_words)) - 1
    ov = overrides or {}

    def blend(nid: int, clean: int) -> int:
        pair = ov.get(nid)
        if pair is None:
            return clean & full
        forced, mask = pair
        return ((clean & ~mask) | (forced & mask)) & full

    values: dict[int, int] = {}
    for nid in net.topo_order():
        if net.kind(nid) is not NodeKind.GATE:
            values[nid] = blend(nid, source_ints[nid])
            continue
        fanins = net.fanins(nid)
        acc = 0
        for cube in truthtable_to_cover(net.func(nid)).cubes:
            term = full
            for i, fanin in enumerate(fanins):
                if (cube.mask >> i) & 1:
                    v = values[fanin]
                    term &= v if (cube.polarity >> i) & 1 else v ^ full
            acc |= term
        values[nid] = blend(nid, acc)
    return values


def reference_sequential(
    net: LogicNetwork,
    stim_rows: "list[dict[int, int]]",
    n_words: int,
    overrides_by_cycle: "dict[int, dict[int, tuple[int, int]]] | None" = None,
) -> list[dict[int, int]]:
    """Cycle-accurate big-int reference: one value dict per cycle.

    D-flip-flop semantics matching the simulators: latch outputs present
    the stored state during the settle, next state latches from the
    drivers' settled values (post-override, like the real kernels).
    """
    full = (1 << (64 * n_words)) - 1
    state = {
        latch.q: full if latch.init == 1 else 0 for latch in net.latches
    }
    out: list[dict[int, int]] = []
    for cycle, pis in enumerate(stim_rows):
        sources = dict(pis)
        sources.update(state)
        values = reference_eval(
            net,
            sources,
            n_words,
            (overrides_by_cycle or {}).get(cycle),
        )
        state = {latch.q: values[latch.driver] for latch in net.latches}
        out.append(values)
    return out
