"""Bit-parallel simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.netlist import (
    SequentialSimulator,
    check_equivalent,
    parse_blif,
    random_stimulus,
    simulate_combinational,
)
from repro.netlist.transforms import cleanup

ONES = np.array([np.uint64(0xFFFFFFFFFFFFFFFF)], dtype=np.uint64)
ZERO = np.array([np.uint64(0)], dtype=np.uint64)


class TestCombinational:
    def test_known_vectors(self, tiny_comb):
        net = tiny_comb
        stim = {
            net.require("x"): ONES,
            net.require("y"): ZERO,
            net.require("z"): ONES,
        }
        vals = simulate_combinational(net, stim)
        assert vals[net.require("out1")][0] == ONES[0]  # (x^y)&z
        assert vals[net.require("out2")][0] == ZERO[0]  # ~x&~z

    def test_missing_source(self, tiny_comb):
        with pytest.raises(SimulationError):
            simulate_combinational(tiny_comb, {})

    def test_length_mismatch(self, tiny_comb):
        net = tiny_comb
        stim = {
            net.require("x"): ONES,
            net.require("y"): np.zeros(2, dtype=np.uint64),
            net.require("z"): ONES,
        }
        with pytest.raises(SimulationError):
            simulate_combinational(net, stim)

    def test_override_forces_value(self, tiny_comb):
        net = tiny_comb
        stim = {
            net.require("x"): ONES,
            net.require("y"): ZERO,
            net.require("z"): ONES,
        }
        w = net.require("w")
        vals = simulate_combinational(net, stim, overrides={w: ZERO})
        assert vals[w][0] == ZERO[0]
        assert vals[net.require("out1")][0] == ZERO[0]

    def test_random_stimulus_shape(self, tiny_comb, rng):
        stim = random_stimulus(tiny_comb, 200, rng)
        assert set(stim) == {"x", "y", "z"}
        assert all(v.shape == (4,) for v in stim.values())


class TestSequential:
    def test_counter_bit_toggles(self):
        net = parse_blif(
            ".model c\n.inputs en\n.outputs q\n.latch d q 0\n"
            ".names en q d\n01 1\n10 1\n.end\n"
        )
        sim = SequentialSimulator(net, n_words=1)
        seen = []
        for _ in range(4):
            vals = sim.step({net.pis[0]: ONES})
            seen.append(int(vals[net.require("q")][0] & np.uint64(1)))
        assert seen == [0, 1, 0, 1]

    def test_init_one(self):
        net = parse_blif(
            ".model c\n.inputs a\n.outputs q\n.latch a q 1\n.end\n"
        )
        sim = SequentialSimulator(net)
        vals = sim.step({net.pis[0]: ZERO})
        assert vals[net.require("q")][0] == ONES[0]

    def test_reset_restores_state(self):
        net = parse_blif(
            ".model c\n.inputs a\n.outputs q\n.latch a q 0\n.end\n"
        )
        sim = SequentialSimulator(net)
        sim.step({net.pis[0]: ONES})
        sim.step({net.pis[0]: ONES})
        sim.reset()
        assert sim.cycle == 0
        vals = sim.step({net.pis[0]: ZERO})
        assert vals[net.require("q")][0] == ZERO[0]

    def test_missing_pi(self, tiny_seq):
        sim = SequentialSimulator(tiny_seq)
        with pytest.raises(SimulationError):
            sim.step({})


class TestEquivalence:
    def test_self_equivalent(self, tiny_seq):
        assert check_equivalent(tiny_seq, tiny_seq.copy())

    def test_cleanup_preserves_function(self, tiny_seq):
        cleaned = cleanup(tiny_seq.copy())
        assert check_equivalent(tiny_seq, cleaned)

    def test_detects_difference(self, tiny_comb):
        other = tiny_comb.copy()
        from repro.netlist.truthtable import TruthTable

        f = other.require("out1")
        other.rewire(f, other.fanins(f), ~other.func(f))
        assert not check_equivalent(tiny_comb, other, n_vectors=128)

    def test_pi_mismatch_raises(self, tiny_comb, tiny_seq):
        with pytest.raises(SimulationError):
            check_equivalent(tiny_comb, tiny_seq)

    def test_sequential_divergence_found(self):
        a = parse_blif(
            ".model a\n.inputs x\n.outputs q\n.latch x q 0\n.end\n"
        )
        b = parse_blif(
            ".model b\n.inputs x\n.outputs q\n.latch d q 0\n"
            ".names x d\n0 1\n.end\n"
        )
        assert not check_equivalent(a, b, n_vectors=64, n_cycles=4)
