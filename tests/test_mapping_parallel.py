"""Flat bitset cut engine + level-wave parallel mapping (PR 10).

The generic prefix's priority-cut mapper was rewritten twice over:

* the **flat bitset engine** (``mapping/cuts.py`` / ``mapper_base.py``)
  replaces frozenset cut algebra with local-domain integer bitmasks and
  stamp-memoized costs — a pure speedup that must choose the *same
  mapping* as the preserved set-based reference (``mapping/ref.py``),
  which is the argument for not bumping the ``initial-map`` /
  ``tcon-map`` stage versions;
* the **level-wave parallel passes** (``mapping/parallel.py``) fan cut
  enumeration and re-merging recovery over the shared
  :class:`~repro.util.intra.IntraPool`, byte-identical to serial at any
  worker count — which is why ``intra`` is never part of any cache key.

This module pins the cut algebra against the reference operators
(hypothesis), the engine-level mapping equality, the wave-layer
byte-identity at workers 1/2/4 (in-process and on a real pool), and the
stage-key stability that keeps warm caches valid.  The ≥2× speedup floor
over the reference engine lives in ``benchmarks/bench_mapping.py``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.muxnet import build_trace_network
from repro.mapping import AbcMap, SimpleMap, TconMap
from repro.mapping.cuts import cut_size, enumerate_cuts
from repro.mapping.ref import (
    RefAbcMap,
    ref_cut_size,
    ref_enumerate_cuts,
    ref_prune,
)
from repro.netlist import LogicNetwork
from repro.netlist.truthtable import TruthTable
from repro.pipeline.stages import DEBUG_FLOW_GRAPH, GENERIC_STAGES
from repro.util.intra import IntraPool
from repro.workloads import campaign_spec, generate_circuit, get_spec


@contextmanager
def _pool(workers: int):
    """An IntraPool backed by its own executor (in-process at <= 1)."""
    if workers <= 1:
        yield IntraPool(workers)
        return
    ex = ProcessPoolExecutor(max_workers=workers)
    try:
        yield IntraPool(workers, acquire=lambda: ex)
    finally:
        ex.shutdown()


def _mapping_fingerprint(res):
    """Everything the downstream pipeline consumes, value-hashable."""
    luts = tuple(
        (nid, l.leaves, l.func.bits, l.param_leaves)
        for nid, l in sorted(res.luts.items())
    )
    tcons = tuple(
        (nid, t.source0, t.source1, t.sel)
        for nid, t in sorted(res.tcons.items())
    )
    return luts, tcons, res.depth()


# -- cut-algebra property tests (flat bitset vs set-based reference) -----------


@st.composite
def random_dags(draw):
    """Small random gate DAGs: every gate reads 1-3 earlier nodes."""
    n_pis = draw(st.integers(min_value=2, max_value=5))
    n_gates = draw(st.integers(min_value=1, max_value=14))
    net = LogicNetwork("hyp")
    nodes = [net.add_pi(f"i{i}") for i in range(n_pis)]
    for g in range(n_gates):
        arity = draw(st.integers(min_value=1, max_value=3))
        fanins = tuple(
            nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
            for _ in range(arity)
        )
        fanins = tuple(dict.fromkeys(fanins))
        bits = draw(
            st.integers(min_value=0, max_value=(1 << (1 << len(fanins))) - 1)
        )
        nodes.append(
            net.add_gate(f"g{g}", fanins, TruthTable(len(fanins), bits))
        )
    net.add_po(f"g{n_gates - 1}")
    return net


@settings(max_examples=60, deadline=None)
@given(net=random_dags(), k=st.integers(min_value=2, max_value=4))
def test_enumerate_cuts_matches_reference(net, k):
    """The flat engine's per-node cut sets equal the set-based reference's
    exactly — same leaves, same order (both rank by (physical size, total
    leaves) here), under the same K/limit/cap pruning."""
    flat = enumerate_cuts(net, k=k, cut_limit=4)
    ref = ref_enumerate_cuts(net, k=k, cut_limit=4)
    assert set(flat) == set(ref)
    for nid, clist in flat.items():
        assert [set(c) for c in clist] == [set(c) for c in ref[nid]]


@settings(max_examples=60, deadline=None)
@given(
    net=random_dags(),
    k=st.integers(min_value=2, max_value=4),
    free_count=st.integers(min_value=0, max_value=3),
)
def test_free_leaf_accounting_matches_reference(net, k, free_count):
    """Parameter (free) leaves never count toward K in either engine."""
    free = list(net.pis)[:free_count]
    flat = enumerate_cuts(net, k=k, cut_limit=4, free_leaves=free)
    ref = ref_enumerate_cuts(net, k=k, cut_limit=4, free_leaves=free)
    for nid, clist in flat.items():
        assert [set(c) for c in clist] == [set(c) for c in ref[nid]]
        for c in clist:
            assert cut_size(c, free) == ref_cut_size(frozenset(c), set(free))
            assert cut_size(c, free) <= k or set(c) == {nid}


@settings(max_examples=100, deadline=None)
@given(
    masks=st.lists(
        st.sets(st.integers(min_value=0, max_value=9), min_size=1, max_size=5),
        min_size=1,
        max_size=12,
    ),
    limit=st.integers(min_value=1, max_value=6),
)
def test_dominance_pruning_matches_reference(masks, limit):
    """Bitset subsumption (``km & m == km``) prunes exactly the cuts the
    frozenset-subset reference prunes, in the same rank order."""
    from repro.mapping.cuts import Cut, _prune

    rank = lambda c: (len(c), tuple(sorted(c)))  # noqa: E731
    ref = ref_prune([frozenset(m) for m in masks], limit, rank)
    flat = _prune(
        [Cut(tuple(sorted(m))) for m in masks],
        limit,
        lambda c: (len(c.leaves), c.leaves),
    )
    assert [set(c.leaves) for c in flat] == [set(c) for c in ref]


# -- engine equality on real designs -------------------------------------------


@pytest.mark.parametrize("name", ["s38417", "diffeq1"])
def test_flat_engine_matches_reference_mapping(name):
    """Flat-engine AbcMap chooses the same cover as the preserved
    set-based mapper on paper-suite designs — LUT for LUT.  This equality
    is what justified keeping the ``initial-map`` stage version."""
    net = generate_circuit(get_spec(name))
    new = AbcMap(k=6, cut_limit=8, area_rounds=2).map(net)
    ref = RefAbcMap(k=6, cut_limit=8, area_rounds=2).map(net)
    assert new.depth() == ref.depth()
    # the engines' tie-breaking differs only where ranks are exactly
    # equal, so covers may diverge on a handful of same-cost cuts; area
    # stays within 2% per design (+0.05% over the whole suite — the
    # aggregate is pinned in benchmarks/bench_mapping.py)
    n_new, n_ref = len(new.luts), len(ref.luts)
    assert abs(n_new - n_ref) <= max(2, 0.02 * n_ref)


# -- level-wave parallel passes ------------------------------------------------


def _wave_design():
    spec = campaign_spec("wave-mid", n_gates=900, depth=12, n_pis=24, n_pos=12)
    return generate_circuit(spec)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_abcmap_waves_byte_identical(workers):
    """AbcMap under level waves equals serial exactly at every worker
    count — both depth passes and the re-merging recovery round."""
    net = _wave_design()
    base = _mapping_fingerprint(AbcMap(k=6, cut_limit=8, area_rounds=2).map(net))
    with _pool(workers) as pool:
        par = AbcMap(k=6, cut_limit=8, area_rounds=2, intra=pool).map(net)
    assert _mapping_fingerprint(par) == base


def test_simplemap_waves_byte_identical():
    """SimpleMap ships the "simple" wave shell (depth-size rank)."""
    net = _wave_design()
    base = _mapping_fingerprint(SimpleMap(k=6).map(net))
    with _pool(2) as pool:
        par = SimpleMap(k=6, intra=pool).map(net)
    assert _mapping_fingerprint(par) == base


def test_tconmap_waves_byte_identical():
    """TconMap (free parameter leaves, taps as boundaries, TCON diversion)
    under waves equals serial — the property that keeps ``tcon-map``
    cache keys worker-count-free."""
    net = _wave_design()
    instr = build_trace_network(net, n_buffer_inputs=4)
    kw = dict(params=instr.param_ids, taps=set(instr.taps))
    base = _mapping_fingerprint(TconMap(**kw).map(instr.network))
    for workers in (2, 4):
        with _pool(workers) as pool:
            par = TconMap(**kw, intra=pool).map(instr.network)
        assert _mapping_fingerprint(par) == base


def test_waves_survive_broken_pool():
    """A dead pool degrades waves to in-process rounds with identical
    results — the campaign-wide IntraPool failure contract."""
    net = _wave_design()
    base = _mapping_fingerprint(AbcMap(k=6).map(net))

    def acquire():
        raise OSError("no pool in this sandbox")

    pool = IntraPool(4, acquire=acquire)
    par = AbcMap(k=6, intra=pool).map(net)
    assert pool.broken
    assert _mapping_fingerprint(par) == base


def test_small_designs_stay_inline():
    """Waves below MIN_WAVE never round-trip the pool: tiny designs pay
    zero pickling overhead even with an intra pool attached."""
    spec = campaign_spec("wave-tiny", n_gates=30, depth=5, n_pis=8, n_pos=4)
    net = generate_circuit(spec)

    class _Exploding:
        workers = 4

        def chunks(self, n):  # pragma: no cover - must not be reached
            raise AssertionError("tiny wave was shipped to the pool")

        map_round = chunks

    base = _mapping_fingerprint(AbcMap(k=6).map(net))
    par = AbcMap(k=6, intra=_Exploding()).map(net)
    assert _mapping_fingerprint(par) == base


# -- cache-key stability -------------------------------------------------------


def test_stage_keys_unchanged_by_intra():
    """``initial-map`` / ``tcon-map`` keys are identical with and without
    an intra pool (byte-identical output ⇒ no discriminator), so warm
    caches stay valid whatever ``--intra-design-workers`` says."""
    net = _wave_design()
    serial = DEBUG_FLOW_GRAPH.run(net, stages=GENERIC_STAGES)
    with _pool(2) as pool:
        waved = DEBUG_FLOW_GRAPH.run(net, stages=GENERIC_STAGES, intra=pool)
    assert serial.keys() == waved.keys()
    assert _mapping_fingerprint(
        serial.value("tcon-map")
    ) == _mapping_fingerprint(waved.value("tcon-map"))
