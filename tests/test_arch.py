"""Architecture model: spec, grid, routing graph, config layout."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import (
    ArchSpec,
    DeviceGrid,
    RRNodeType,
    TileType,
    build_config_layout,
    build_rr_graph,
)
from repro.errors import ArchitectureError


SMALL = ArchSpec(k=4, n_ble=2, n_cluster_inputs=6, channel_width=8, io_capacity=2)


class TestSpec:
    def test_defaults_valid(self):
        ArchSpec()

    @pytest.mark.parametrize(
        "kw",
        [
            {"k": 1},
            {"n_ble": 0},
            {"n_cluster_inputs": 2},
            {"channel_width": 1},
            {"fc_in": 0.0},
            {"fc_out": 1.5},
            {"io_capacity": 0},
            {"switch_fanout": 0},
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ArchitectureError):
            ArchSpec(**kw)

    def test_lut_bits(self):
        assert ArchSpec(k=6).lut_bits == 64

    def test_select_width_covers_codes(self):
        s = ArchSpec()
        assert (s.n_cluster_inputs + s.n_ble + 1) < (1 << s.ble_select_bits)

    def test_clb_config_bits_positive(self):
        assert ArchSpec().clb_config_bits() > 0


class TestGrid:
    def test_tile_types(self):
        g = DeviceGrid(SMALL, 2)
        assert g.tile_type(0, 0) == TileType.EMPTY
        assert g.tile_type(1, 0) == TileType.IO
        assert g.tile_type(1, 1) == TileType.CLB

    def test_out_of_range(self):
        g = DeviceGrid(SMALL, 2)
        with pytest.raises(ArchitectureError):
            g.tile_type(99, 0)

    def test_counts(self):
        g = DeviceGrid(SMALL, 3)
        assert g.n_clbs == 9
        assert g.n_io_tiles == 12
        assert len(g.clb_positions()) == 9
        assert len(g.io_positions()) == 12

    def test_for_design_fits(self):
        g = DeviceGrid.for_design(SMALL, n_clbs=5, n_pads=10)
        assert g.n_clbs * 0.7 >= 5 or g.n_clbs >= 5
        assert g.n_pads >= 10

    def test_for_design_io_limited(self):
        g = DeviceGrid.for_design(SMALL, n_clbs=1, n_pads=40)
        assert g.n_pads >= 40


class TestRRGraph:
    @pytest.fixture(scope="class")
    def rr(self):
        return build_rr_graph(DeviceGrid(SMALL, 2))

    def test_node_counts(self, rr):
        assert rr.n_nodes > 0 and rr.n_edges > 0
        # every CLB has its pins
        for (x, y) in rr.grid.clb_positions():
            assert (x, y) in rr.sink_of
            assert len(rr.ipins_of[(x, y)]) == SMALL.n_cluster_inputs

    def test_edges_within_range(self, rr):
        assert int(rr.edge_dst.max()) < rr.n_nodes
        assert rr.edge_offsets[-1] == rr.n_edges

    def test_opins_drive_wires_only(self, rr):
        for (x, y) in rr.grid.clb_positions():
            for b in range(SMALL.n_ble):
                _eidx, dsts = rr.out_edges(rr.opin_of[(x, y, b)])
                for d in dsts:
                    assert rr.is_wire(int(d))

    def test_ipins_feed_their_sink(self, rr):
        for (x, y) in rr.grid.clb_positions():
            sink = rr.sink_of[(x, y)]
            for ip in rr.ipins_of[(x, y)]:
                _e, dsts = rr.out_edges(ip)
                assert sink in dsts.tolist()

    def test_programmable_flags(self, rr):
        # SOURCE->OPIN edges are hardwired
        src = rr.source_of[(1, 1, 0)]
        eidx, dsts = rr.out_edges(src)
        assert not rr.edge_programmable[eidx].any()

    def test_wires_have_switch_edges(self, rr):
        some_wire = next(iter(rr.chanx_id.values()))
        eidx, dsts = rr.out_edges(some_wire)
        assert len(dsts) > 0

    def test_source_capacity_high(self, rr):
        src = rr.source_of[(1, 1, 0)]
        assert rr.capacity[src] > 1

    def test_edge_src_array_consistent(self, rr):
        src = rr.edge_src_array()
        for node in (rr.sink_of[(1, 1)], rr.opin_of[(1, 1, 0)]):
            eidx, _ = rr.out_edges(node)
            for e in eidx:
                assert src[e] == node


class TestConfigLayout:
    @pytest.fixture(scope="class")
    def layout(self):
        rr = build_rr_graph(DeviceGrid(SMALL, 2))
        return build_config_layout(rr, frame_bits=128)

    def test_every_ble_has_cells(self, layout):
        for (x, y) in layout.grid.clb_positions():
            for b in range(SMALL.n_ble):
                assert (x, y, b) in layout.lut_base
                assert (x, y, b) in layout.ble_ctrl

    def test_addresses_unique(self, layout):
        seen = set()
        for base in layout.lut_base.values():
            for i in range(SMALL.lut_bits):
                assert base + i not in seen
                seen.add(base + i)
        for bit in layout.switch_bit.values():
            assert bit not in seen
            seen.add(bit)

    def test_frames_cover_bits(self, layout):
        assert layout.n_frames * layout.frame_bits >= layout.n_bits

    def test_column_frames_disjoint(self, layout):
        claimed: set[int] = set()
        for x in range(layout.grid.width):
            frames = set(layout.frames_of_column(x))
            assert not (frames & claimed)
            claimed |= frames

    def test_frame_of_bit(self, layout):
        assert layout.frame_of_bit(0) == 0
        with pytest.raises(Exception):
            layout.frame_of_bit(layout.n_bits + 1)
