"""ArtifactStore corruption hardening: every damaged-entry shape must
degrade to a quarantined miss + rebuild — never an exception — with the
``corrupt`` statistic accounting for it."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.pipeline.store import ArtifactStore


def _disk_store(tmp_path) -> ArtifactStore:
    return ArtifactStore(cache_dir=str(tmp_path / "cache"))


def _entry_path(store: ArtifactStore, stage: str, key: str) -> str:
    path = store._path(stage, key)
    assert os.path.exists(path)
    return path


def _fresh_reader(store: ArtifactStore) -> ArtifactStore:
    """A second store on the same directory, cold in-memory layer —
    lookups must go to disk (what a restarted campaign sees)."""
    return ArtifactStore(cache_dir=store.cache_dir)


class TestCorruptEntries:
    @pytest.mark.parametrize(
        "damage",
        [
            pytest.param(lambda p: _truncate(p, 0), id="zero-byte"),
            pytest.param(lambda p: _truncate_half(p), id="truncated"),
            pytest.param(
                lambda p: _overwrite(p, b"\x80\x05not a pickle at all"),
                id="garbage",
            ),
            pytest.param(lambda p: _flip_payload_byte(p), id="bit-flip"),
        ],
    )
    def test_damage_degrades_to_miss_and_rebuild(self, tmp_path, damage):
        store = _disk_store(tmp_path)
        store.put("place", "k1", {"value": 42})
        damage(_entry_path(store, "place", "k1"))

        reader = _fresh_reader(store)
        assert reader.get("place", "k1") is None
        st = reader.stats.for_stage("place").as_dict()
        assert st["corrupt"] == 1
        assert st["misses"] == 1
        # the consumer rebuilds exactly as after an invalidation-style miss
        reader.put("place", "k1", {"value": 42})
        again = _fresh_reader(store).get("place", "k1")
        assert again is not None and again.value == {"value": 42}

    def test_corrupt_entry_is_quarantined_not_deleted(self, tmp_path):
        store = _disk_store(tmp_path)
        store.put("route", "k9", [1, 2, 3])
        path = _entry_path(store, "route", "k9")
        _truncate_half(path)

        reader = _fresh_reader(store)
        assert reader.get("route", "k9") is None
        assert not os.path.exists(path)
        qdir = os.path.join(store.cache_dir, "quarantine")
        assert os.listdir(qdir) == ["route__k9.pkl"]

    def test_corrupt_counts_aggregate(self, tmp_path):
        store = _disk_store(tmp_path)
        for key in ("a", "b"):
            store.put("pack", key, key * 3)
            _truncate(_entry_path(store, "pack", key), 1)
        reader = _fresh_reader(store)
        assert reader.get("pack", "a") is None
        assert reader.get("pack", "b") is None
        assert reader.stats.corrupt == 2
        assert reader.stats.as_dict()["corrupt"] == 2


class TestCompatibilityAndDurability:
    def test_legacy_raw_pickle_still_loads(self, tmp_path):
        # entries written before the checksum trailer existed are plain
        # pickles; they must keep loading (a trailer is not required)
        store = _disk_store(tmp_path)
        store.put("validate", "old", "seed-era")  # ensure stage dir exists
        path = store._path("validate", "legacy")
        with open(path, "wb") as fh:
            fh.write(pickle.dumps({"legacy": True}))
        got = _fresh_reader(store).get("validate", "legacy")
        assert got is not None and got.value == {"legacy": True}

    def test_fsync_round_trip(self, tmp_path):
        store = ArtifactStore(cache_dir=str(tmp_path / "c"), fsync=True)
        store.put("place", "k", ("durable",))
        got = _fresh_reader(store).get("place", "k")
        assert got is not None and got.value == ("durable",)

    def test_memory_only_store_never_corrupts(self):
        store = ArtifactStore()
        store.put("place", "k", 1)
        assert store.get("place", "k").value == 1
        assert store.stats.corrupt == 0


class TestStaleTmpSweep:
    def test_sweep_removes_only_tmp_leftovers(self, tmp_path):
        store = _disk_store(tmp_path)
        store.put("place", "good", 7)
        stage_dir = os.path.dirname(_entry_path(store, "place", "good"))
        for name in ("dead1.tmp", "dead2.tmp"):
            with open(os.path.join(stage_dir, name), "wb") as fh:
                fh.write(b"partial write from a killed process")
        assert store.sweep_stale_tmp() == 2
        assert sorted(os.listdir(stage_dir)) == [
            os.path.basename(_entry_path(store, "place", "good"))
        ]
        # entries survive, repeat sweep is a no-op
        assert _fresh_reader(store).get("place", "good").value == 7
        assert store.sweep_stale_tmp() == 0

    def test_stale_tmp_never_shadows_a_lookup(self, tmp_path):
        # readers address <key>.pkl only: a .tmp for the same key is
        # invisible, a miss stays a plain miss (no exception, no corrupt)
        store = _disk_store(tmp_path)
        store.put("place", "seen", 1)  # create the stage dir
        stage_dir = os.path.dirname(_entry_path(store, "place", "seen"))
        with open(os.path.join(stage_dir, "ghost.pkl.tmp"), "wb") as fh:
            fh.write(b"\x00\x01")
        reader = _fresh_reader(store)
        assert reader.get("place", "ghost") is None
        st = reader.stats.for_stage("place").as_dict()
        assert st["corrupt"] == 0 and st["misses"] == 1

    def test_sweep_on_memory_store_is_noop(self):
        assert ArtifactStore().sweep_stale_tmp() == 0


# -- damage helpers ------------------------------------------------------------


def _truncate(path: str, size: int) -> None:
    with open(path, "r+b") as fh:
        fh.truncate(size)


def _truncate_half(path: str) -> None:
    _truncate(path, max(1, os.path.getsize(path) // 2))


def _overwrite(path: str, data: bytes) -> None:
    with open(path, "wb") as fh:
        fh.write(data)


def _flip_payload_byte(path: str) -> None:
    with open(path, "r+b") as fh:
        data = bytearray(fh.read())
        data[len(data) // 3] ^= 0xFF
        fh.seek(0)
        fh.write(data)
