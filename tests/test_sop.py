"""SOP covers and the ISOP algorithm."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.netlist.sop import (
    Cover,
    Cube,
    cover_to_truthtable,
    truthtable_to_cover,
)
from repro.netlist.truthtable import TruthTable


class TestCube:
    def test_parse_render_roundtrip(self):
        for text in ("1-0", "---", "111", "0"):
            assert Cube.from_blif(text).to_blif(len(text)) == text

    def test_bad_char(self):
        with pytest.raises(ValueError):
            Cube.from_blif("1x0")

    def test_polarity_outside_mask(self):
        with pytest.raises(ValueError):
            Cube(mask=0b01, polarity=0b10)

    def test_contains_point(self):
        c = Cube.from_blif("1-0")
        assert c.contains_point(0b001)
        assert c.contains_point(0b011)
        assert not c.contains_point(0b101)

    def test_n_literals(self):
        assert Cube.from_blif("1-0").n_literals() == 2

    def test_truthtable_expansion(self):
        c = Cube.from_blif("11")
        assert c.truthtable(2) == (TruthTable.var(0, 2) & TruthTable.var(1, 2))


class TestCover:
    def test_offset_cover(self):
        # cubes describe where output is 0
        cov = Cover(1, (Cube.from_blif("1"),), output_value=0)
        assert cover_to_truthtable(cov) == ~TruthTable.var(0, 1)

    def test_bad_output_value(self):
        with pytest.raises(ValueError):
            Cover(1, (), output_value=2)

    def test_blif_lines(self):
        cov = Cover(2, (Cube.from_blif("1-"), Cube.from_blif("-0")))
        assert cov.to_blif_lines() == ["1- 1", "-0 1"]


class TestIsop:
    @given(st.integers(1, 4).flatmap(
        lambda n: st.tuples(st.just(n), st.integers(0, (1 << (1 << n)) - 1))
    ))
    def test_isop_exact(self, nv):
        n, bits = nv
        tt = TruthTable(n, bits)
        cov = truthtable_to_cover(tt)
        assert cover_to_truthtable(cov) == tt

    def test_isop_constants(self):
        assert truthtable_to_cover(TruthTable.const(0, 3)).cubes == ()
        c1 = truthtable_to_cover(TruthTable.const(1, 3))
        assert cover_to_truthtable(c1) == TruthTable.const(1, 3)

    def test_isop_compact_for_xor(self):
        tt = TruthTable.var(0, 2) ^ TruthTable.var(1, 2)
        assert len(truthtable_to_cover(tt).cubes) == 2

    def test_isop_single_cube_for_and(self):
        tt = TruthTable.var(0, 3) & TruthTable.var(1, 3) & TruthTable.var(2, 3)
        assert len(truthtable_to_cover(tt).cubes) == 1

    @given(st.integers(1, 3).flatmap(
        lambda n: st.tuples(st.just(n), st.integers(0, (1 << (1 << n)) - 1))
    ))
    def test_isop_cubes_within_onset(self, nv):
        n, bits = nv
        tt = TruthTable(n, bits)
        for cube in truthtable_to_cover(tt).cubes:
            cube_tt = cube.truthtable(n)
            # every cube lies entirely inside the on-set
            assert (cube_tt.bits & ~tt.bits) == 0
