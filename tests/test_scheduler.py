"""Dataflow scheduler semantics: segment fusion, failure isolation,
store-stats parity with the serial path, and scheduled-vs-barrier
campaign equivalence at several worker counts."""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignConfig, run_campaign
from repro.campaign.cache import ArtifactStore, OfflineCache
from repro.core.flow import DebugFlowConfig
from repro.pipeline import (
    DEBUG_FLOW_GRAPH,
    GENERIC_STAGES,
    PHYSICAL_STAGES,
    DataflowScheduler,
    ScheduledTask,
    Stage,
    StageGraph,
    submit_compile,
)
from repro.workloads import campaign_spec, generate_circuit, stuck_at_scenarios

SPEC_A = campaign_spec("sched-a", n_gates=80, depth=6, n_pis=12, n_pos=6)
SPEC_B = campaign_spec("sched-b", n_gates=60, depth=5, n_pis=10, n_pos=5)
HORIZON = 48


@pytest.fixture(scope="module")
def scenarios():
    return stuck_at_scenarios(SPEC_A, 3, horizon=HORIZON) + stuck_at_scenarios(
        SPEC_B, 3, horizon=HORIZON
    )


def _outcomes_json(report) -> str:
    """The campaign CLI's outcomes serialization (byte-comparable)."""
    return json.dumps(report.outcomes(), indent=2, default=str)


class TestSegments:
    def test_full_flow_partition(self):
        segs = DEBUG_FLOW_GRAPH.segments(GENERIC_STAGES + PHYSICAL_STAGES)
        assert segs == [
            (
                "validate",
                "cleanup",
                "initial-map",
                "signal-parameterisation",
                "tcon-map",
                "pack",
            ),
            ("rr-graph",),
            ("place",),
            ("route", "bitgen"),
        ]

    def test_generic_flow_is_one_chain(self):
        assert DEBUG_FLOW_GRAPH.segments(GENERIC_STAGES) == [
            tuple(GENERIC_STAGES)
        ]

    def test_suffix_subset(self):
        # dependencies outside the subset count as externally supplied
        # (rr-graph is a store hit here), so the suffix fuses into one chain
        assert DEBUG_FLOW_GRAPH.segments(("place", "route", "bitgen")) == [
            ("place", "route", "bitgen"),
        ]

    def test_segments_cover_and_order(self):
        names = GENERIC_STAGES + PHYSICAL_STAGES
        segs = DEBUG_FLOW_GRAPH.segments(names)
        flat = [n for seg in segs for n in seg]
        assert sorted(flat) == sorted(names)
        # topological: every dependency inside the selection appears earlier
        seen = set()
        for seg in segs:
            for n in seg:
                deps = set(DEBUG_FLOW_GRAPH[n].inputs) & set(names)
                assert deps <= seen | set(seg)
                seen.add(n)


class TestSchedulerCore:
    def test_dependency_order_and_callbacks(self):
        sched = DataflowScheduler()
        order = []

        def make(name):
            return ScheduledTask(
                kind="offline",
                label=name,
                inline_fn=lambda: order.append(name),
            )

        a = sched.add(make("a"))
        b = sched.add(make("b"), deps=[a])
        sched.add(make("c"), deps=[a, b])
        sched.add(make("d"))
        sched.run()
        assert order.index("a") < order.index("b") < order.index("c")
        assert set(order) == {"a", "b", "c", "d"}

    def test_cancelled_task_never_runs(self):
        sched = DataflowScheduler()
        ran = []
        t = sched.add(
            ScheduledTask(
                kind="offline", label="x", inline_fn=lambda: ran.append(1)
            )
        )
        sched.cancel(t)
        sched.run()
        assert ran == []
        assert t.cancelled and not t.done

    def test_broken_pool_falls_back_inline(self):
        def factory(_n):
            raise OSError("no pools here")

        sched = DataflowScheduler(pool_size=2, executor_factory=factory)
        out = []
        sched.add(
            ScheduledTask(
                kind="online",
                label="p",
                pooled=True,
                worker_fn=len,
                payload=[1, 2, 3],
                on_done=lambda _t, r: out.append(r),
            )
        )
        sched.run()
        assert out == [3]
        assert sched.pool_broken
        assert "online" in sched.inline_fallbacks


# -- a tiny diamond graph for failure-isolation tests --------------------------
#
#   source -> s1 -> s2 -> s4      (s2 raises when params["boom"] is set)
#               \-> s3 --^


def _s1(ctx):
    return ("s1", ctx["source"].name)


def _s2(ctx):
    if ctx.params.get("boom"):
        raise ValueError("boom")
    return ("s2", *ctx["s1"])


def _s3(ctx):
    return ("s3", *ctx["s1"])


def _s4(ctx):
    return ("s4", ctx["s2"], ctx["s3"])


DIAMOND = StageGraph(
    [
        Stage("s1", _s1, inputs=("source",)),
        Stage("s2", _s2, inputs=("s1",), param_fields=("boom",)),
        Stage("s3", _s3, inputs=("s1",)),
        Stage("s4", _s4, inputs=("s2", "s3")),
    ]
)


class TestFailureIsolation:
    def test_failing_stage_cancels_only_its_designs_downstream(self):
        net_a = generate_circuit(SPEC_A)
        net_b = generate_circuit(SPEC_B)
        store = ArtifactStore()
        sched = DataflowScheduler()
        done = {}

        plan_a = DIAMOND.plan(net_a, params={"boom": True})
        plan_b = DIAMOND.plan(net_b)
        tasks_a = submit_compile(
            sched,
            DIAMOND,
            net_a,
            plan_a,
            store=store,
            on_complete=lambda res, err: done.setdefault("a", (res, err)),
        )
        tasks_b = submit_compile(
            sched,
            DIAMOND,
            net_b,
            plan_b,
            store=store,
            on_complete=lambda res, err: done.setdefault("b", (res, err)),
        )
        sched.run()

        res_a, err_a = done["a"]
        assert res_a is None and "ValueError: boom" in err_a
        res_b, err_b = done["b"]
        assert err_b is None and res_b.value("s4")[0] == "s4"
        assert all(t.done for t in tasks_b)
        # design A: the s4 segment (downstream of the failure) was
        # cancelled; the independent s3 segment still completed and its
        # artifact landed in the store
        by_head = {t.label.split(":")[-1]: t for t in tasks_a}
        assert by_head["s4"].cancelled and not by_head["s4"].done
        assert by_head["s3"].done
        assert store.contains("s3", plan_a.keys["s3"])
        assert not store.contains("s4", plan_a.keys["s4"])

    def test_on_complete_fires_exactly_once_on_failure(self):
        net = generate_circuit(SPEC_B)
        sched = DataflowScheduler()
        calls = []
        submit_compile(
            sched,
            DIAMOND,
            net,
            DIAMOND.plan(net, params={"boom": True}),
            on_complete=lambda res, err: calls.append((res, err)),
        )
        sched.run()
        assert len(calls) == 1
        assert calls[0][0] is None


class TestStoreStatsParity:
    """The scheduler's probe/put discipline must be indistinguishable
    from the serial executor's — cold, warm, and across an invalidating
    config change."""

    def _scheduled(self, net, config, store):
        sched = DataflowScheduler()
        out = {}
        submit_compile(
            sched,
            DEBUG_FLOW_GRAPH,
            net,
            DEBUG_FLOW_GRAPH.plan(net, config, stages=GENERIC_STAGES),
            store=store,
            on_complete=lambda res, err: out.update(res=res, err=err),
        )
        sched.run()
        assert out["err"] is None
        return out["res"]

    def test_cold_warm_and_invalidation_stats_match_serial(self):
        net = generate_circuit(SPEC_B)
        serial_store, sched_store = ArtifactStore(), ArtifactStore()
        configs = [
            DebugFlowConfig(),
            DebugFlowConfig(),  # fully warm repeat
            DebugFlowConfig(fold_polarity=False),  # invalidates tcon-map
        ]
        for config in configs:
            serial = DEBUG_FLOW_GRAPH.run(
                net, config, store=serial_store, stages=GENERIC_STAGES
            )
            scheduled = self._scheduled(net, config, sched_store)
            assert scheduled.keys() == serial.keys()
            assert scheduled.hits() == serial.hits()
            assert sched_store.stats.as_dict() == serial_store.stats.as_dict()


class TestScheduleParity:
    """Dataflow and barrier schedules must produce byte-identical
    outcomes and identical store statistics at workers in {1, 4}."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_outcomes_and_stats_parity(self, scenarios, workers):
        reports = {}
        for schedule in ("dataflow", "barrier"):
            reports[schedule] = run_campaign(
                scenarios,
                config=CampaignConfig(workers=workers, schedule=schedule),
                cache=ArtifactStore(),
            )
        assert _outcomes_json(reports["dataflow"]) == _outcomes_json(
            reports["barrier"]
        )
        assert (
            reports["dataflow"].cache_stats == reports["barrier"].cache_stats
        )
        assert reports["dataflow"].schedule == "dataflow"
        assert reports["barrier"].schedule == "barrier"

    def test_pooled_offline_parity_with_serial_barrier(self, scenarios):
        overlapped = run_campaign(
            scenarios,
            config=CampaignConfig(workers=2, offline_workers=2),
            cache=ArtifactStore(),
        )
        serial = run_campaign(
            scenarios,
            config=CampaignConfig(schedule="barrier"),
            cache=ArtifactStore(),
        )
        assert _outcomes_json(overlapped) == _outcomes_json(serial)

    def test_whole_artifact_parity(self, scenarios):
        dataflow = run_campaign(
            scenarios,
            config=CampaignConfig(workers=2),
            cache=OfflineCache(),
        )
        barrier = run_campaign(
            scenarios,
            config=CampaignConfig(workers=2, schedule="barrier"),
            cache=OfflineCache(),
        )
        assert _outcomes_json(dataflow) == _outcomes_json(barrier)
        assert dataflow.cache_stats == barrier.cache_stats

    def test_critical_path_metrics_reported(self, scenarios):
        report = run_campaign(
            scenarios,
            config=CampaignConfig(workers=2, offline_workers=2),
            cache=ArtifactStore(),
        )
        assert report.sched_wall_s > 0
        assert 0.0 <= report.overlap_ratio <= 1.0
        assert "online" in report.stage_concurrency
        assert "schedule: dataflow" in report.render()

    def test_failing_design_does_not_poison_others(self, scenarios):
        # a design whose generation fails leaves the other design's
        # scenarios fully processed
        import dataclasses

        bad = dataclasses.replace(
            scenarios[0],
            name="bad",
            # depth > n_gates is ungeneratable -> registration failure
            spec=campaign_spec("sched-bad", n_gates=2, depth=7),
        )
        report = run_campaign(
            [bad, *scenarios[3:]],
            config=CampaignConfig(workers=2, offline_workers=2),
            cache=ArtifactStore(),
        )
        assert report.results[0].status == "error"
        assert "offline stage failed" in report.results[0].error
        assert all(r.status != "error" for r in report.results[1:])
