"""Technology mapping: cuts, SimpleMap, AbcMap, result containers."""

from __future__ import annotations

import pytest

from repro.errors import MappingError
from repro.mapping import AbcMap, SimpleMap, cone_function, enumerate_cuts
from repro.mapping.cuts import cut_size, merge_cut_lists
from repro.netlist import LogicNetwork, check_equivalent, validate_network
from repro.netlist.truthtable import TruthTable
from repro.workloads import generate_circuit, get_spec

AND2 = TruthTable.var(0, 2) & TruthTable.var(1, 2)
XOR2 = TruthTable.var(0, 2) ^ TruthTable.var(1, 2)


def chain_net(n: int = 8) -> LogicNetwork:
    """A chain of XORs with side inputs: depth n at gate level."""
    net = LogicNetwork("chain")
    prev = net.add_pi("a0")
    for i in range(n):
        side = net.add_pi(f"s{i}")
        prev = net.add_gate(f"g{i}", (prev, side), XOR2)
    net.add_po(f"g{n-1}")
    return net


class TestCuts:
    def test_trivial_for_sources(self, tiny_comb):
        cuts = enumerate_cuts(tiny_comb, k=4)
        for pi in tiny_comb.pis:
            assert cuts[pi] == [frozenset((pi,))]

    def test_cut_is_valid_cut(self, tiny_comb):
        cuts = enumerate_cuts(tiny_comb, k=4)
        out1 = tiny_comb.require("out1")
        for cut in cuts[out1]:
            # collapsing over the cut must succeed (i.e. the cut separates)
            cone_function(tiny_comb, out1, tuple(sorted(cut)))

    def test_k_limit_respected(self, stereov_net):
        cuts = enumerate_cuts(stereov_net, k=4, cut_limit=4)
        for nid, clist in cuts.items():
            for c in clist:
                assert cut_size(c, ()) <= 4 or c == frozenset((nid,))

    def test_boundary_exposes_only_trivial(self, tiny_comb):
        w = tiny_comb.require("w")
        cuts = enumerate_cuts(tiny_comb, k=4, boundary=[w])
        assert cuts[w] == [frozenset((w,))]
        out1 = tiny_comb.require("out1")
        for cut in cuts[out1]:
            # nothing may look through w
            assert not (
                tiny_comb.require("x") in cut and tiny_comb.require("y") in cut
            ) or w not in cut

    def test_free_leaves_not_counted(self):
        assert cut_size(frozenset((1, 2, 3)), frozenset((2,))) == 2

    def test_bad_k(self):
        with pytest.raises(MappingError):
            enumerate_cuts(LogicNetwork(), k=1)

    def test_merge_respects_total_cap(self):
        lists = [[frozenset((i,))] for i in range(3)]
        out = merge_cut_lists(
            lists, k=6, limit=4, free_leaves=(), rank=lambda c: (len(c),),
            max_total_leaves=2,
        )
        assert out == []


class TestConeFunction:
    def test_collapses_and_chain(self):
        net = LogicNetwork()
        a, b, c = (net.add_pi(x) for x in "abc")
        g1 = net.add_gate("g1", (a, b), AND2)
        g2 = net.add_gate("g2", (g1, c), AND2)
        tt = cone_function(net, g2, (a, b, c))
        assert tt == (
            TruthTable.var(0, 3) & TruthTable.var(1, 3) & TruthTable.var(2, 3)
        )

    def test_escaping_cone_raises(self):
        net = LogicNetwork()
        a, b = net.add_pi("a"), net.add_pi("b")
        g = net.add_gate("g", (a, b), AND2)
        with pytest.raises(MappingError):
            cone_function(net, g, (a,))  # b missing from the cut


@pytest.mark.parametrize("mapper_cls", [SimpleMap, AbcMap])
class TestMappers:
    def test_equivalence(self, tiny_seq, mapper_cls):
        res = mapper_cls(k=4).map(tiny_seq)
        lutnet = res.to_lut_network()
        validate_network(lutnet)
        assert check_equivalent(tiny_seq, lutnet, n_vectors=128, n_cycles=6)

    def test_depth_compression(self, mapper_cls):
        net = chain_net(10)
        res = mapper_cls(k=6).map(net)
        # a 10-deep 2-input chain fits in ceil(10/5)=2..4 levels of 6-LUTs
        assert res.depth() <= 5

    def test_lut_inputs_bounded(self, mapper_cls, stereov_net):
        res = mapper_cls(k=6).map(stereov_net)
        for lut in res.luts.values():
            assert len(lut.physical_inputs) <= 6

    def test_all_pos_implemented(self, mapper_cls, tiny_seq):
        res = mapper_cls().map(tiny_seq)
        lutnet = res.to_lut_network()
        assert set(lutnet.po_names) == set(tiny_seq.po_names)

    def test_forced_roots_present(self, mapper_cls, tiny_comb):
        w = tiny_comb.require("w")
        res = mapper_cls(forced_roots=[w]).map(tiny_comb)
        assert w in res.luts

    def test_macro_node_identity(self, mapper_cls, tiny_comb):
        w = tiny_comb.require("w")
        res = mapper_cls(macro_nodes=[w]).map(tiny_comb)
        assert res.luts[w].leaves == tuple(sorted(tiny_comb.fanins(w)))


class TestAreaAndDepth:
    def test_abc_never_bigger_than_simplemap_on_suite(self):
        net = generate_circuit(get_spec("stereov."))
        sm = SimpleMap().map(net)
        abc = AbcMap().map(net)
        assert abc.n_luts <= sm.n_luts

    def test_area_recovery_helps(self, stereov_net):
        no_rec = AbcMap(area_rounds=0).map(stereov_net)
        rec = AbcMap(area_rounds=2).map(stereov_net)
        assert rec.n_luts <= no_rec.n_luts
        assert rec.depth() <= no_rec.depth()

    def test_depth_to_subset(self, tiny_comb):
        res = AbcMap().map(tiny_comb)
        assert res.depth_to(["out2"]) <= res.depth()

    def test_levels_consistent(self, stereov_net):
        res = AbcMap().map(stereov_net)
        levels = res.levels()
        for root, lut in res.luts.items():
            for leaf in lut.physical_inputs:
                assert levels.get(leaf, 0) < levels[root]

    def test_summary_mentions_counts(self, tiny_comb):
        res = AbcMap().map(tiny_comb)
        assert "LUTs" in res.summary()
