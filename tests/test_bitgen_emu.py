"""End-to-end: bitstream generation, SCG specialization, emulator decode.

These are the strongest tests in the suite: what the emulator runs is
reconstructed *purely from configuration bits*, so agreement with the
reference simulation proves mapping, packing, placement, routing, bitgen
and the SCG simultaneously.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitgen.partial import changed_frames, frame_view
from repro.core.costmodel import Virtex5Model
from repro.core.flow import DebugFlowConfig, run_generic_stage, run_physical_stage
from repro.core.scg import SpecializedConfigGenerator
from repro.emu import FpgaEmulator
from repro.errors import BitstreamError
from repro.netlist import parse_blif
from repro.netlist.simulate import SequentialSimulator
from tests.conftest import TINY_SEQ_BLIF


@pytest.fixture(scope="module")
def physical_stage():
    net = parse_blif(TINY_SEQ_BLIF)
    offline = run_generic_stage(net, DebugFlowConfig(n_buffer_inputs=2))
    phys = run_physical_stage(offline)
    return offline, phys


def _reference_outputs(offline, values, stim_seq):
    mapped = offline.mapping.to_lut_network()
    sim = SequentialSimulator(mapped, n_words=1)
    out = []
    for stim in stim_seq:
        pi_vals = {}
        for pi in sim.net.pis:
            nm = sim.net.node_name(pi)
            bit = values.get(nm, stim.get(nm, 0))
            pi_vals[pi] = np.array(
                [0xFFFFFFFFFFFFFFFF if bit else 0], dtype=np.uint64
            )
        vals = sim.step(pi_vals)
        out.append(
            {
                po: int(vals[sim.net.require(po)][0] & np.uint64(1))
                for po in sim.net.po_names
            }
        )
    return out


class TestEndToEnd:
    def test_pconf_has_tunable_bits(self, physical_stage):
        _off, phys = physical_stage
        assert phys.bitstream.pconf.n_tunable > 0

    @pytest.mark.parametrize("tap_index", [0, 1, 2])
    def test_emulator_matches_reference(self, physical_stage, tap_index, rng):
        offline, phys = physical_stage
        design = offline.instrumented
        sig = design.network.node_name(design.taps[tap_index])
        values = design.selection_for([sig])
        assign = design.param_space.assignment(values)
        bits, _stats = phys.bitstream.pconf.specialize(assign)

        emu = FpgaEmulator(bits, phys.bitstream, phys.rr)
        stim_seq = [
            {n: int(rng.integers(0, 2)) for n in ("a", "b", "c")}
            for _ in range(20)
        ]
        full_values = {
            name: values.get(name, 0) for name in design.param_space.names
        }
        expected = _reference_outputs(offline, full_values, stim_seq)
        for cyc, stim in enumerate(stim_seq):
            got = emu.step(stim)
            for po, want in expected[cyc].items():
                assert got[po] == want, f"cycle {cyc} PO {po}"

    def test_tb_output_equals_selected_signal(self, physical_stage, rng):
        """The decoded device really routes the selected signal to tb_*."""
        offline, phys = physical_stage
        design = offline.instrumented
        tap = design.taps[0]
        sig = design.network.node_name(tap)
        group = design.group_of(tap)
        values = design.selection_for([sig])
        assign = design.param_space.assignment(values)
        bits, _ = phys.bitstream.pconf.specialize(assign)
        emu = FpgaEmulator(bits, phys.bitstream, phys.rr)

        # reference: simulate the *source* network and read the signal
        src_sim = SequentialSimulator(offline.source, n_words=1)
        for _ in range(16):
            stim = {n: int(rng.integers(0, 2)) for n in ("a", "b", "c")}
            got = emu.step(stim)
            vals = src_sim.step(
                {
                    p: np.array(
                        [0xFFFFFFFFFFFFFFFF if stim[offline.source.node_name(p)] else 0],
                        dtype=np.uint64,
                    )
                    for p in offline.source.pis
                }
            )
            want = int(vals[offline.source.require(sig)][0] & np.uint64(1))
            assert got[group.po_name] == want

    def test_respecialization_touches_few_frames(self, physical_stage):
        offline, phys = physical_stage
        design = offline.instrumented
        scg = SpecializedConfigGenerator(
            phys.bitstream.pconf,
            frame_bits=phys.layout.frame_bits,
            model=Virtex5Model(),
        )
        scg.load_full(design.param_space.zeros())
        # choose a signal whose selection actually flips a parameter (the
        # first leaf of each group is selected by the all-zero default)
        sig = None
        for tap in design.taps:
            values = design.selection_for([design.network.node_name(tap)])
            if any(values.values()):
                sig = design.network.node_name(tap)
                break
        assert sig is not None
        rec = scg.respecialize(
            design.param_space.assignment(design.selection_for([sig]))
        )
        assert 0 < len(rec.frames_touched) < scg.n_frames
        assert rec.device_cost.specialization_s < rec.device_cost.full_reconfig_s

    def test_same_assignment_touches_no_frames(self, physical_stage):
        offline, phys = physical_stage
        design = offline.instrumented
        scg = SpecializedConfigGenerator(phys.bitstream.pconf)
        scg.load_full(design.param_space.zeros())
        rec = scg.respecialize(design.param_space.zeros())
        assert rec.frames_touched == ()

    def test_decode_rejects_wrong_length(self, physical_stage):
        _off, phys = physical_stage
        from repro.emu import decode_bitstream

        with pytest.raises(BitstreamError):
            decode_bitstream(
                np.zeros(3, dtype=np.uint8), phys.bitstream, phys.rr
            )


class TestFrameDiff:
    def test_changed_frames_basic(self):
        a = np.zeros(100, dtype=np.uint8)
        b = a.copy()
        b[5] = 1
        b[77] = 1
        assert changed_frames(a, b, 32) == [0, 2]

    def test_no_change(self):
        a = np.ones(10, dtype=np.uint8)
        assert changed_frames(a, a.copy(), 4) == []

    def test_length_mismatch(self):
        with pytest.raises(BitstreamError):
            changed_frames(
                np.zeros(4, np.uint8), np.zeros(5, np.uint8), 2
            )

    def test_frame_view_pads(self):
        v = frame_view(np.ones(5, dtype=np.uint8), 4)
        assert v.shape == (2, 4)
        assert v[1].tolist() == [1, 0, 0, 0]
