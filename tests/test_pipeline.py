"""The stage-graph pipeline: key algebra, store semantics, campaign threading."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignConfig,
    OfflineCache,
    resolve_offline,
    run_campaign,
)
from repro.core.flow import DebugFlowConfig, run_generic_stage
from repro.errors import DebugFlowError
from repro.mapping import AbcMap, TconMap
from repro.netlist.transforms import cleanup
from repro.pipeline import (
    DEBUG_FLOW_GRAPH,
    GENERIC_STAGES,
    PHYSICAL_STAGES,
    Stage,
    StageGraph,
    assemble_offline,
    compile_design,
)
from repro.workloads import campaign_spec, generate_circuit, stuck_at_scenarios

SPEC = campaign_spec("pipe-test", n_gates=100, depth=7, n_pis=16, n_pos=8)
ALL_STAGES = GENERIC_STAGES + PHYSICAL_STAGES
HORIZON = 48


@pytest.fixture(scope="module")
def net():
    return generate_circuit(SPEC)


@pytest.fixture(scope="module")
def offline(net):
    return run_generic_stage(net)


@pytest.fixture(scope="module")
def scenarios():
    return stuck_at_scenarios(SPEC, 3, horizon=HORIZON)


def downstream_from(first: str) -> set[str]:
    return set(DEBUG_FLOW_GRAPH.downstream_of(first))


class TestStageKeys:
    #: The exact invalidation footprint of every DebugFlowConfig field:
    #: changing a knob must re-key the stage that reads it plus its
    #: downstream closure — and nothing upstream.
    FIELD_FOOTPRINT = {
        ("k", 5): downstream_from("initial-map"),
        ("cut_limit", 6): downstream_from("initial-map"),
        ("area_rounds", 1): downstream_from("initial-map"),
        ("n_buffer_inputs", 4): downstream_from("signal-parameterisation"),
        ("run_cleanup", False): downstream_from("cleanup"),
        ("fold_polarity", False): downstream_from("tcon-map"),
        ("trace_depth", 2048): set(),
    }

    def test_every_config_field_has_a_pinned_footprint(self):
        from dataclasses import fields

        covered = {f for f, _ in self.FIELD_FOOTPRINT}
        assert covered == {f.name for f in fields(DebugFlowConfig)}

    def test_deterministic(self, net):
        a = DEBUG_FLOW_GRAPH.stage_keys(net, DebugFlowConfig())
        b = DEBUG_FLOW_GRAPH.stage_keys(generate_circuit(SPEC), DebugFlowConfig())
        assert a == b
        assert set(a) == set(ALL_STAGES)

    @pytest.mark.parametrize(
        "field,value", sorted(FIELD_FOOTPRINT, key=str), ids=lambda v: str(v)
    )
    def test_field_invalidates_exactly_downstream(self, net, field, value):
        base = DebugFlowConfig()
        old = DEBUG_FLOW_GRAPH.stage_keys(net, base)
        new = DEBUG_FLOW_GRAPH.stage_keys(net, replace(base, **{field: value}))
        changed = {s for s in ALL_STAGES if old[s] != new[s]}
        assert changed == self.FIELD_FOOTPRINT[(field, value)]

    def test_renamed_design_conservatively_misses(self, net):
        renamed = net.copy()
        renamed.name = "pipe-test-renamed"
        old = DEBUG_FLOW_GRAPH.stage_keys(net)
        new = DEBUG_FLOW_GRAPH.stage_keys(renamed)
        assert all(old[s] != new[s] for s in ALL_STAGES)

    def test_tap_override_enters_at_parameterisation(self, net):
        old = DEBUG_FLOW_GRAPH.stage_keys(net)
        new = DEBUG_FLOW_GRAPH.stage_keys(net, params={"taps": [1, 2, 3]})
        changed = {s for s in ALL_STAGES if old[s] != new[s]}
        assert changed == downstream_from("signal-parameterisation")

    def test_param_keys_hash_full_content_not_lossy_repr(self, net):
        # numpy's repr elides the middle of large arrays; keys must hash
        # the full content, so near-identical big overrides never collide
        import numpy as np

        a = np.arange(2000)
        b = a.copy()
        b[500] = 7
        assert repr(a) == repr(b)  # the hazard being guarded against
        ka = DEBUG_FLOW_GRAPH.stage_keys(net, params={"taps": a})
        kb = DEBUG_FLOW_GRAPH.stage_keys(net, params={"taps": b})
        assert ka["signal-parameterisation"] != kb["signal-parameterisation"]
        # list-vs-array of the same content is the same key
        kl = DEBUG_FLOW_GRAPH.stage_keys(net, params={"taps": list(a)})
        assert kl["signal-parameterisation"] == ka["signal-parameterisation"]

    def test_empty_tap_override_is_honored_not_defaulted(self, net):
        # an explicit empty selection must not silently fall back to the
        # default tap set its key claims to exclude
        with pytest.raises(DebugFlowError):
            compile_design(net, params={"taps": []})

    def test_physical_params_only_touch_their_stage_onward(self, net):
        old = DEBUG_FLOW_GRAPH.stage_keys(net)
        new = DEBUG_FLOW_GRAPH.stage_keys(net, params={"seed": 7})
        changed = {s for s in ALL_STAGES if old[s] != new[s]}
        assert changed == downstream_from("place")


class TestStageGraphStructure:
    def test_rejects_unordered_dependencies(self):
        with pytest.raises(DebugFlowError):
            StageGraph(
                [Stage("b", fn=lambda ctx: None, inputs=("a",))]
            )

    def test_rejects_duplicate_names(self):
        s = Stage("a", fn=lambda ctx: None, inputs=("source",))
        with pytest.raises(DebugFlowError):
            StageGraph([s, s])

    def test_prefix_must_be_dependency_closed(self):
        with pytest.raises(DebugFlowError):
            DEBUG_FLOW_GRAPH.prefix(["tcon-map"])
        # preset upstream artifacts satisfy the dependencies instead
        names = [
            s.name
            for s in DEBUG_FLOW_GRAPH.prefix(
                ["tcon-map"], have=["initial-map", "signal-parameterisation"]
            )
        ]
        assert names == ["tcon-map"]


class TestArtifactStore:
    def test_miss_then_hit_and_invalidation(self):
        store = ArtifactStore()
        assert store.get("s", "k1") is None
        store.put("s", "k1", 41)
        assert store.get("s", "k1").value == 41
        # a miss under a *different* key for a stage that has entries is
        # an invalidation; the very first miss was a cold build
        assert store.get("s", "k2") is None
        st = store.stats.for_stage("s")
        assert (st.hits, st.misses, st.invalidations) == (1, 2, 1)

    def test_new_group_is_cold_build_not_invalidation(self):
        # an invalidation means a *prior build of the same design* became
        # unreachable; a genuinely-new design entering a warm store is a
        # cold build
        store = ArtifactStore()
        store.get("s", "k1", group="design-a")
        store.put("s", "k1", 1, group="design-a")
        store.get("s", "k2", group="design-b")  # new design: cold
        assert store.stats.for_stage("s").invalidations == 0
        store.get("s", "k3", group="design-a")  # same design, new key
        assert store.stats.for_stage("s").invalidations == 1
        # without a group the conservative heuristic still applies
        store.get("s", "k4")
        assert store.stats.for_stage("s").invalidations == 2

    def test_new_design_not_counted_as_invalidation_via_pipeline(self):
        store = ArtifactStore()
        compile_design(generate_circuit(SPEC), store=store)
        other = campaign_spec("pipe-test-b", n_gates=100, depth=7)
        compile_design(generate_circuit(other), store=store)
        assert store.stats.invalidations == 0
        # a knob change on a known design still counts
        compile_design(
            generate_circuit(SPEC),
            DebugFlowConfig(fold_polarity=False),
            store=store,
        )
        assert store.stats.for_stage("tcon-map").invalidations == 1
        assert store.stats.invalidations == 1

    def test_passthrough_cleanup_persists_ref_not_duplicate(self, tmp_path):
        import os

        from repro.pipeline.store import StoreRef

        d = str(tmp_path / "refstore")
        store = ArtifactStore(cache_dir=d)
        cfg = DebugFlowConfig(run_cleanup=False)
        net = generate_circuit(SPEC)
        result = compile_design(net, cfg, store=store)
        # pass-through: cleanup returned the validate artifact by identity
        assert result.value("cleanup") is result.value("validate")
        val_path = store._path("validate", result.artifacts["validate"].key)
        cln_path = store._path("cleanup", result.artifacts["cleanup"].key)
        # the cleanup entry on disk is a tiny StoreRef, not a second pickle
        assert os.path.getsize(cln_path) < os.path.getsize(val_path) / 2
        import pickle

        with open(cln_path, "rb") as fh:
            ref = pickle.load(fh)
        assert isinstance(ref, StoreRef) and ref.stage == "validate"
        # a fresh store (new process) resolves the ref transparently
        fresh = ArtifactStore(cache_dir=d)
        again = compile_design(net, cfg, store=fresh)
        assert again.full_hit
        assert again.value("cleanup").name == net.name

    def test_disk_roundtrip_and_corrupt_entry(self, tmp_path):
        d = str(tmp_path / "store")
        warm = ArtifactStore(cache_dir=d)
        warm.put("stage-a", "key1", {"payload": [1, 2]})

        fresh = ArtifactStore(cache_dir=d)
        found = fresh.get("stage-a", "key1")
        assert found.value == {"payload": [1, 2]}
        assert fresh.stats.disk_hits == 1

        with open(fresh._path("stage-a", "key1"), "wb") as fh:
            fh.write(b"not a pickle")
        broken = ArtifactStore(cache_dir=d)
        assert broken.get("stage-a", "key1") is None


class TestCompileDesign:
    def test_cold_then_fully_warm(self, net):
        store = ArtifactStore()
        cold = compile_design(net, store=store)
        assert not any(cold.hits().values())
        warm = compile_design(net, store=store)
        assert warm.full_hit
        # the warm run did zero stage work
        assert warm.timers.total() == 0.0

    def test_store_does_not_alias_caller_network(self, net):
        # the cached source/cleanup artifacts must be copies: mutating the
        # caller's network after a compile may not rewrite store contents
        store = ArtifactStore()
        mine = net.copy()
        cfg = DebugFlowConfig(run_cleanup=False)
        first = compile_design(mine, cfg, store=store)
        assert first.value("cleanup") is not mine
        name_before = first.value("cleanup").name
        mine.name = "mutated-after-compile"
        again = compile_design(net.copy(), cfg, store=store)
        assert again.full_hit
        assert again.value("cleanup").name == name_before

    def test_single_knob_rebuilds_only_invalidated_suffix(self, net):
        store = ArtifactStore()
        compile_design(net, store=store)
        partial = compile_design(
            net, DebugFlowConfig(fold_polarity=False), store=store
        )
        assert partial.hits() == {
            "validate": True,
            "cleanup": True,
            "initial-map": True,
            "signal-parameterisation": True,
            "tcon-map": False,
        }

    def test_facade_matches_manual_flow(self, net, offline):
        """run_generic_stage through the graph ≡ the historical sequence."""
        config = DebugFlowConfig()
        work = cleanup(net)
        initial = AbcMap(
            k=config.k,
            cut_limit=config.cut_limit,
            area_rounds=config.area_rounds,
        ).map(work)
        taps = sorted(initial.luts.keys()) + [l.q for l in work.latches]
        assert offline.initial.n_luts == initial.n_luts
        assert offline.taps == offline.instrumented.taps
        assert sorted(offline.initial.luts.keys()) + [
            l.q for l in offline.source.latches
        ] == taps
        mapping = TconMap(
            k=config.k,
            cut_limit=config.cut_limit,
            area_rounds=config.area_rounds,
            params=offline.instrumented.param_ids,
            taps=set(offline.taps),
            fold_polarity=config.fold_polarity,
        ).map(offline.instrumented.network)
        assert (offline.mapping.n_luts, offline.mapping.n_tcons) == (
            mapping.n_luts,
            mapping.n_tcons,
        )
        # stage timers keep the historical phase names
        assert set(offline.timers.totals) == set(GENERIC_STAGES)

    def test_assemble_offline_equivalent_to_facade(self, net, offline):
        again = assemble_offline(compile_design(net))
        assert again.summary() == offline.summary()
        assert again.cache_key == offline.cache_key is not None


class TestResolveOffline:
    def test_cold_builds_every_time(self, net):
        a, hit_a = resolve_offline(net)
        b, hit_b = resolve_offline(net)
        assert not hit_a and not hit_b
        assert a is not b

    def test_whole_artifact_flavor(self, net):
        cache = OfflineCache()
        _, h1 = resolve_offline(net, cache=cache)
        _, h2 = resolve_offline(net, cache=cache)
        # any knob change misses the whole-artifact key entirely
        _, h3 = resolve_offline(
            net, DebugFlowConfig(trace_depth=2048), cache=cache
        )
        assert (h1, h2, h3) == (False, True, False)

    def test_stage_granular_flavor(self, net):
        store = ArtifactStore()
        _, h1 = resolve_offline(net, cache=store)
        _, h2 = resolve_offline(net, cache=store)
        # trace_depth is an online knob: nothing is invalidated, so even a
        # "changed" config is a full hit at stage granularity
        _, h3 = resolve_offline(
            net, DebugFlowConfig(trace_depth=2048), cache=store
        )
        assert (h1, h2, h3) == (False, True, True)
        # a mapping knob is a partial rebuild, reported as a build
        _, h4 = resolve_offline(
            net, DebugFlowConfig(fold_polarity=False), cache=store
        )
        assert not h4
        assert store.stats.for_stage("tcon-map").invalidations == 1


class TestResolveOfflineParams:
    def test_params_honored_on_every_cache_flavor(self, net, offline):
        sub = offline.taps[: max(2, len(offline.taps) // 2)]
        cold, _ = resolve_offline(net, params={"taps": sub})
        assert cold.instrumented.taps == list(sub)

        whole = OfflineCache()
        resolve_offline(net, cache=whole)
        overridden, hit = resolve_offline(
            net, cache=whole, params={"taps": sub}
        )
        # a params-bearing request may not be served the default-taps hit
        assert not hit and overridden.instrumented.taps == list(sub)

        store = ArtifactStore()
        staged, _ = resolve_offline(net, cache=store, params={"taps": sub})
        assert staged.instrumented.taps == list(sub)

    def test_wrong_typed_disk_entry_degrades_to_miss(self, net, tmp_path):
        import os
        import pickle

        d = str(tmp_path / "cache")
        cache = OfflineCache(cache_dir=d)
        key = cache.key(net)
        os.makedirs(os.path.join(d, "offline"))
        with open(cache._path(key), "wb") as fh:
            pickle.dump({"not": "an offline stage"}, fh)
        stage, hit = resolve_offline(net, cache=cache)
        assert not hit and stage.summary()


class TestCampaignWithStageStore:
    def test_same_outcomes_as_whole_artifact(self, scenarios):
        whole = run_campaign(scenarios, cache=OfflineCache())
        staged = run_campaign(scenarios, cache=ArtifactStore())
        assert whole.outcomes() == staged.outcomes()

    def test_stage_hits_and_report_breakdown(self, scenarios):
        store = ArtifactStore()
        report = run_campaign(scenarios, cache=store)
        assert [r.offline_cache_hit for r in report.results] == [
            False,
            True,
            True,
        ]
        assert report.cache_stats["per_stage"]["tcon-map"]["hits"] == 2
        text = report.render()
        assert "stage tcon-map:" in text

    def test_config_change_between_campaigns_is_incremental(self, scenarios):
        store = ArtifactStore()
        first = run_campaign(scenarios, cache=store)
        changed = CampaignConfig(flow=DebugFlowConfig(fold_polarity=False))
        second = run_campaign(scenarios, config=changed, cache=store)
        assert {r.status for r in first.results + second.results} == {
            "localized"
        }
        # the second campaign rebuilt only the TCON mapping
        per_stage = store.stats.as_dict()["per_stage"]
        assert per_stage["tcon-map"]["misses"] == 2
        for unaffected in ("validate", "cleanup", "initial-map"):
            assert per_stage[unaffected]["misses"] == 1


class TestOrchestratorPolish:
    def test_payloads_deduped_per_cache_key(self, scenarios):
        from repro.campaign.orchestrator import _group_payloads

        cache = OfflineCache()
        resolved = [
            (i, sc, resolve_offline(sc.debug_network(), cache=cache)[0])
            for i, sc in enumerate(scenarios)
        ]
        # serial (lane_width=1): one payload for the shared-artifact group
        serial = _group_payloads(resolved, 48, workers=1, lane_width=1)
        assert len(serial) == 1
        stage, items, max_turns, lane_width, interpreted, backend = serial[0]
        assert stage.physical is None and max_turns == 48 and lane_width == 1
        assert interpreted is False and backend is None
        assert sorted(idx for idx, _ in items) == [0, 1, 2]
        # pooled: split into at most `workers` chunks, artifact shipped
        # once per chunk instead of once per scenario
        pooled = _group_payloads(resolved, 48, workers=2, lane_width=1)
        assert len(pooled) == 2
        assert sorted(idx for p in pooled for idx, _ in p[1]) == [0, 1, 2]
        # lane mode: the shared-artifact group packs into one 64-lane batch
        lanes = _group_payloads(resolved, 48, workers=2, lane_width=64)
        assert len(lanes) == 1 and lanes[0][3] == 64
        assert sorted(idx for idx, _ in lanes[0][1]) == [0, 1, 2]
        # narrow lanes split the group into ceil(n / lane_width) batches
        narrow = _group_payloads(resolved, 48, workers=1, lane_width=2)
        assert sorted(len(p[1]) for p in narrow) == [1, 2]

    def test_pool_fallback_reports_effective_workers(
        self, scenarios, monkeypatch
    ):
        import repro.campaign.orchestrator as orch

        class BrokenPool:
            def __init__(self, *a, **kw):
                raise OSError("no process pools here")

        monkeypatch.setattr(orch, "ProcessPoolExecutor", BrokenPool)
        # lane_width=1 with several workers yields multiple payloads, so
        # the pool is genuinely attempted — and its failure reported
        report = run_campaign(
            scenarios,
            config=CampaignConfig(workers=4, lane_width=1),
            cache=OfflineCache(),
        )
        assert report.workers == 1
        assert any("effective workers: 1" in n for n in report.notes)
        assert {r.status for r in report.results} == {"localized"}

    def test_pool_skipped_for_single_payload(self, scenarios, monkeypatch):
        """One lane batch can't be spread over a pool: the orchestrator
        must not pay pool startup for it (the BENCH_campaign pool_speedup
        < 1 regression) and must record the true effective workers."""
        import repro.campaign.orchestrator as orch

        def explode(*a, **kw):  # the pool must not even be constructed
            raise AssertionError("pool should have been skipped")

        monkeypatch.setattr(orch, "ProcessPoolExecutor", explode)
        report = run_campaign(
            scenarios, config=CampaignConfig(workers=4), cache=OfflineCache()
        )
        assert report.workers == 1
        assert any("worker pool skipped" in n for n in report.notes)
        assert {r.status for r in report.results} == {"localized"}


class TestFaultUnification:
    def test_one_shared_forced_fault_type(self):
        from repro.core.debug import ForcedFault as SessionFault
        from repro.emu.fault import ForcedFault as EmuFault

        assert SessionFault is EmuFault

    def test_injector_and_session_share_semantics(self, offline):
        import numpy as np

        from repro.core.debug import DebugSession
        from repro.emu.fault import FaultInjector, active_overrides

        session = DebugSession(offline)
        sig = session.observable_signals[0]
        fault = session.force(sig, 1, first_cycle=2, last_cycle=3)
        # the session's per-cycle overrides are exactly active_overrides
        for cycle in range(5):
            direct = active_overrides([fault], cycle, n_words=1)
            assert (direct is not None) == (2 <= cycle <= 3)
        fi = FaultInjector(offline.source)
        returned = fi.stuck_at(sig, 1, first_cycle=2, last_cycle=3)
        assert returned.active_at(2) and not returned.active_at(4)
        assert type(returned) is type(fault)
        ones = np.uint64(0xFFFFFFFFFFFFFFFF)
        assert active_overrides([returned], 2)[returned.node][0] == ones


@pytest.mark.slow
class TestPhysicalPipeline:
    SPEC = campaign_spec("pipe-phys", n_gates=60, depth=6, n_pis=12, n_pos=6)

    def test_physical_stages_cache_and_invalidate(self):
        net = generate_circuit(self.SPEC)
        store = ArtifactStore()
        cold = compile_design(net, store=store, with_physical=True)
        assert set(cold.artifacts) == set(ALL_STAGES)
        warm = compile_design(net, store=store, with_physical=True)
        assert warm.full_hit
        # fold_polarity invalidates tcon-map and the physical suffix only
        part = compile_design(
            net,
            DebugFlowConfig(fold_polarity=False),
            store=store,
            with_physical=True,
        )
        misses = {s for s, hit in part.hits().items() if not hit}
        assert misses == downstream_from("tcon-map")

    def test_facade_shares_store_entries_with_full_graph(self):
        from repro.core.flow import run_physical_stage

        net = generate_circuit(self.SPEC)
        store = ArtifactStore()
        compile_design(net, store=store, with_physical=True)
        offline = assemble_offline(compile_design(net, store=store))
        run_physical_stage(offline, store=store)
        # the façade's physical stages hit the entries the full-graph
        # compile stored (graph-native preset keys), never rebuilding
        for s in PHYSICAL_STAGES:
            stats = store.stats.for_stage(s)
            assert stats.misses == 1 and stats.hits >= 1

    def test_facade_physical_equivalence(self):
        from repro.core.flow import run_physical_stage
        from repro.physical import physical_from_mapping

        net = generate_circuit(self.SPEC)
        offline = run_generic_stage(net)
        via_facade = run_physical_stage(offline)
        direct = physical_from_mapping(offline.mapping, offline.instrumented)
        assert via_facade.n_clbs_used == direct.n_clbs_used
        assert via_facade.wires_used == direct.wires_used
        assert offline.physical is via_facade


class TestCliCacheCorrectness:
    @pytest.mark.slow
    def test_second_run_is_all_stage_hits_with_identical_outcomes(
        self, tmp_path
    ):
        import json

        from repro.campaign.cli import main

        cache_dir = str(tmp_path / "cache")
        out1 = str(tmp_path / "run1.json")
        out2 = str(tmp_path / "run2.json")
        args = [
            "--designs",
            "stereov.",
            "--per-design",
            "1",
            "--horizon",
            "48",
            "--cache-dir",
            cache_dir,
        ]
        assert main([*args, "--outcomes-json", out1]) == 0
        assert main([*args, "--outcomes-json", out2, "--assert-warm"]) == 0
        with open(out1) as fh1, open(out2) as fh2:
            assert json.load(fh1) == json.load(fh2)

    def test_assert_warm_rejects_no_cache(self):
        from repro.campaign.cli import main

        assert main(["--no-cache", "--assert-warm"]) == 2

    def test_assert_warm_fails_cold(self, tmp_path):
        from repro.campaign.cli import main

        rc = main(
            [
                "--designs",
                "stereov.",
                "--per-design",
                "1",
                "--horizon",
                "48",
                "--cache-dir",
                str(tmp_path / "fresh"),
                "--assert-warm",
            ]
        )
        assert rc == 3
