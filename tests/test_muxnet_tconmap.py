"""Signal parameterisation (mux network) and TconMap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.muxnet import build_trace_network, default_taps
from repro.core.parameters import ParameterSpace
from repro.errors import DebugFlowError
from repro.mapping import AbcMap, TconMap
from repro.netlist import check_equivalent, validate_network
from repro.netlist.simulate import SequentialSimulator


@pytest.fixture
def instrumented(tiny_seq):
    return build_trace_network(tiny_seq, n_buffer_inputs=2)


class TestBuild:
    def test_structure(self, instrumented):
        d = instrumented
        assert d.n_buffer_inputs == 2
        assert len(d.taps) == len(set(d.taps))
        validate_network(d.network)

    def test_every_tap_has_a_path(self, instrumented):
        for g in instrumented.groups:
            for leaf in g.leaves:
                assert leaf in g.path

    def test_params_are_pis(self, instrumented):
        net = instrumented.network
        for name, nid in instrumented.param_nodes.items():
            assert net.node_name(nid) == name
            assert nid in net.pis

    def test_annotation_roundtrip(self, instrumented):
        from repro.core.annotate import parse_par, write_par

        ann = instrumented.annotation()
        again = parse_par(write_par(ann))
        assert again.param_names == ann.param_names
        assert again.tap_names == ann.tap_names
        assert again.buffer_names == ann.buffer_names

    def test_default_taps_exclude_pis(self, tiny_seq):
        taps = default_taps(tiny_seq)
        assert not any(t in tiny_seq.pis for t in taps)

    def test_pi_tap_rejected(self, tiny_seq):
        with pytest.raises(DebugFlowError):
            build_trace_network(tiny_seq, [tiny_seq.pis[0]])

    def test_duplicate_tap_rejected(self, tiny_seq):
        t = list(tiny_seq.gates())[0]
        with pytest.raises(DebugFlowError):
            build_trace_network(tiny_seq, [t, t])

    def test_triggers_add_logic(self, tiny_seq):
        with_t = build_trace_network(tiny_seq, with_triggers=True)
        without = build_trace_network(tiny_seq, with_triggers=False)
        assert len(with_t.trigger_nodes) > 0
        assert with_t.network.n_gates > without.network.n_gates
        assert with_t.network.n_latches == without.network.n_latches + len(
            with_t.groups
        )


class TestSelection:
    def test_selection_routes_signal(self, instrumented):
        d = instrumented
        net = d.network
        sig = net.node_name(d.taps[0])
        values = d.selection_for([sig])
        assert d.observed_at(values)[d.group_of(d.taps[0]).po_name] == sig

    def test_every_signal_selectable(self, instrumented):
        d = instrumented
        net = d.network
        for tap in d.taps:
            sig = net.node_name(tap)
            values = d.selection_for([sig])
            observed = d.observed_at(values)
            assert sig in observed.values()

    def test_collision_rejected(self, instrumented):
        d = instrumented
        g0 = d.groups[0]
        if len(g0.leaves) < 2:
            pytest.skip("group too small")
        names = [d.network.node_name(l) for l in g0.leaves[:2]]
        with pytest.raises(DebugFlowError):
            d.selection_for(names)

    def test_unknown_signal_rejected(self, instrumented):
        with pytest.raises(DebugFlowError):
            instrumented.selection_for(["who"])

    def test_selection_is_functionally_correct(self, instrumented, rng):
        """Simulating the instrumented net, tb_g equals the selected signal."""
        d = instrumented
        net = d.network
        sig = net.node_name(d.taps[-1])
        values = d.selection_for([sig])
        group = d.group_of(d.taps[-1])

        sim = SequentialSimulator(net, n_words=2)
        for _ in range(6):
            stim = {}
            for pi in net.pis:
                nm = net.node_name(pi)
                if nm in d.param_nodes:
                    bit = values.get(nm, 0)
                    word = np.full(
                        2,
                        np.uint64(0xFFFFFFFFFFFFFFFF) if bit else np.uint64(0),
                        dtype=np.uint64,
                    )
                else:
                    word = rng.integers(
                        0, np.iinfo(np.uint64).max, size=2, dtype=np.uint64,
                        endpoint=True,
                    )
                stim[pi] = word
            out = sim.step(stim)
            assert np.array_equal(
                out[net.require(group.po_name)], out[net.require(sig)]
            )


class TestTconMap:
    def test_muxes_become_tcons(self, instrumented):
        tm = TconMap(
            params=instrumented.param_ids, taps=set(instrumented.taps)
        ).map(instrumented.network)
        assert tm.n_tcons > 0

    def test_equivalence_with_params_as_pis(self, instrumented):
        tm = TconMap(
            params=instrumented.param_ids, taps=set(instrumented.taps)
        ).map(instrumented.network)
        lutnet = tm.to_lut_network()
        validate_network(lutnet)
        assert check_equivalent(
            instrumented.network, lutnet, n_vectors=128, n_cycles=6
        )

    def test_taps_remain_physical(self, instrumented):
        from repro.netlist.network import NodeKind

        tm = TconMap(
            params=instrumented.param_ids, taps=set(instrumented.taps)
        ).map(instrumented.network)
        for tap in instrumented.taps:
            if instrumented.network.kind(tap) == NodeKind.GATE:
                assert tap in tm.luts, "tapped gate must exist as a LUT"
            else:
                # latch outputs are physical by construction
                assert instrumented.network.kind(tap) == NodeKind.LATCH

    def test_param_aware_smaller_than_blind(self, stereov_net):
        initial = AbcMap().map(stereov_net)
        taps = sorted(initial.luts.keys()) + [
            l.q for l in stereov_net.latches
        ]
        instr = build_trace_network(stereov_net, taps)
        aware = TconMap(params=instr.param_ids, taps=set(taps)).map(
            instr.network
        )
        blind = AbcMap(forced_roots=frozenset(taps)).map(instr.network)
        assert aware.n_luts < blind.n_luts

    def test_tcon_edges_counted(self, instrumented):
        tm = TconMap(
            params=instrumented.param_ids, taps=set(instrumented.taps)
        ).map(instrumented.network)
        assert tm.n_tcons == 2 * len(tm.tcons)

    def test_depth_ignores_tcons(self, stereov_offline):
        from repro.baselines.conventional import user_sink_names

        sinks = user_sink_names(stereov_offline.source)
        prop = stereov_offline.mapping.depth_to(sinks)
        golden = stereov_offline.initial.depth_to(sinks)
        assert prop <= golden
