"""Network statistics, the .par format, and example-script smoke tests."""

from __future__ import annotations

import subprocess
import sys
import os

import pytest

from repro.core.annotate import ParAnnotation, parse_par, write_par
from repro.errors import ParameterError
from repro.netlist import network_stats, logic_depth
from repro.netlist.stats import node_levels


class TestStats:
    def test_levels_monotone(self, tiny_seq):
        levels = node_levels(tiny_seq)
        for nid in tiny_seq.gates():
            for f in tiny_seq.fanins(nid):
                assert levels[f] < levels[nid]

    def test_depth_counts_latch_drivers(self, tiny_seq):
        assert logic_depth(tiny_seq) >= 1

    def test_stats_fields(self, tiny_seq):
        st = network_stats(tiny_seq)
        assert st.n_pis == 3
        assert st.n_latches == 1
        assert st.n_gates == 4
        assert st.max_fanin <= 2
        assert len(st.row()) == 9

    def test_consts_counted_separately(self):
        from repro.netlist import LogicNetwork

        net = LogicNetwork()
        net.add_pi("a")
        net.add_const("one", 1)
        net.add_po("one")
        st = network_stats(net)
        assert st.n_consts == 1 and st.n_gates == 0


class TestParFormat:
    def test_roundtrip(self):
        ann = ParAnnotation(
            param_names=["p0", "p1"], tap_names=["n1"], buffer_names=["tb_0"]
        )
        again = parse_par(write_par(ann))
        assert again == ann

    def test_duplicate_rejected(self):
        with pytest.raises(ParameterError):
            write_par(ParAnnotation(param_names=["p", "p"]))

    def test_param_tap_overlap_rejected(self):
        with pytest.raises(ParameterError):
            write_par(
                ParAnnotation(param_names=["x"], tap_names=["x"])
            )

    def test_whitespace_name_rejected(self):
        with pytest.raises(ParameterError):
            write_par(ParAnnotation(param_names=["a b"]))

    def test_parse_bad_line(self):
        with pytest.raises(ParameterError):
            parse_par(".param\n")
        with pytest.raises(ParameterError):
            parse_par(".weird x\n")

    def test_parse_ignores_comments(self):
        ann = parse_par("# header\n.param p  # inline\n")
        assert ann.param_names == ["p"]


EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


@pytest.mark.slow
class TestExamples:
    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "bug_hunt.py",
            "waveform_capture.py",
            "campaign_demo.py",
        ],
    )
    def test_example_runs(self, script, tmp_path):
        args = [sys.executable, os.path.join(EXAMPLES, script)]
        if script == "waveform_capture.py":
            args.append(str(tmp_path / "out.vcd"))
        proc = subprocess.run(
            args, capture_output=True, text=True, timeout=600,
            cwd=str(tmp_path),
        )
        assert proc.returncode == 0, proc.stderr[-2000:]

    def test_area_exploration_single(self, tmp_path):
        proc = subprocess.run(
            [
                sys.executable,
                os.path.join(EXAMPLES, "area_exploration.py"),
                "stereov.",
            ],
            capture_output=True,
            text=True,
            timeout=600,
            cwd=str(tmp_path),
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "TABLE I" in proc.stdout
