"""Shared fixtures for the test suite."""

from __future__ import annotations

try:  # optional so the no-numpy CI backend-parity job can collect the
    # suite; fixtures that need numpy are only requested by numpy tests
    import numpy as np
except ImportError:  # pragma: no cover — exercised by the no-numpy CI job
    np = None
import pytest

from repro.netlist import parse_blif


TINY_SEQ_BLIF = """
.model tiny
.inputs a b c
.outputs f g
.names a b t1
11 1
.names t1 c t2
1- 1
-1 1
.latch t2 q 0
.names q a f
10 1
.names t2 q g
01 1
10 1
.end
"""

TINY_COMB_BLIF = """
.model comb
.inputs x y z
.outputs out1 out2
.names x y w
10 1
01 1
.names w z out1
11 1
.names x z out2
00 1
.end
"""


@pytest.fixture
def tiny_seq():
    return parse_blif(TINY_SEQ_BLIF)


@pytest.fixture
def tiny_comb():
    return parse_blif(TINY_COMB_BLIF)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def stereov_net():
    from repro.workloads import generate_circuit, get_spec

    return generate_circuit(get_spec("stereov."))


@pytest.fixture(scope="session")
def stereov_offline(stereov_net):
    from repro.core.flow import run_generic_stage

    return run_generic_stage(stereov_net.copy())
