"""Cross-backend differential parity harness.

The compiled simulation layer now has two independent kernel
implementations — the generated big-int python kernels and the
vectorized numpy lowering — next to the reference per-gate interpreter.
This harness treats every implementation as an oracle that must agree
**bit-for-bit** with an independent big-int reference evaluator
(:mod:`tests.parity`, which shares no lowering code with any of them):

* a seeded random-network sweep over unmapped/mapped × combinational/
  sequential shapes at lane widths 1, 64, 96, 128 and 1024, with
  fault-style (lane-masked) and mutation-style (full-mask) overrides;
* backend resolution rules (width-based auto selection, environment
  override, explicit-request validation);
* full-campaign outcome diffs: the same stuck-at campaign run once per
  backend must produce byte-identical outcomes JSON — fast multi-word
  version always, the full 1024-scenario single-batch version on the
  slow tier.

Everything not explicitly marked ``needs_numpy`` runs without numpy
installed: the CI backend-parity matrix re-executes this file with
numpy masked out to pin the python backend's zero-dependency claim.
"""

from __future__ import annotations

import json
import random

import pytest

try:
    import numpy as np
except ImportError:  # pragma: no cover — exercised by the no-numpy CI job
    np = None

from parity import (
    random_network,
    random_override_ints,
    random_stimulus_ints,
    reference_sequential,
)
from repro.errors import SimulationError
from repro.netlist.compiled import (
    AUTO_NUMPY_MIN_WORDS,
    BACKEND_ENV,
    CompiledSimulator,
    numpy_available,
    program_for,
    resolve_backend,
)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not importable"
)

#: Lane widths the sweep covers: single word, exact word boundary, ragged
#: multi-word, two words, and the 16-word width the issue targets.
WIDTHS = (1, 64, 96, 128, 1024)

N_CYCLES = 6


def _n_words(width: int) -> int:
    return (width + 63) // 64


def _scenario(net, width: int, seed: int):
    """Deterministic stimulus + per-cycle overrides for one sweep case.

    Cycles alternate between clean, fault-style (lane-masked) and
    mutation-style (full-mask) overrides so each backend's override
    blending is exercised in every combination.
    """
    rng = random.Random(seed * 7919 + width)
    nw = _n_words(width)
    stim_rows = [random_stimulus_ints(rng, net, nw) for _ in range(N_CYCLES)]
    overrides = {}
    for cyc in range(N_CYCLES):
        if cyc % 3 == 1:
            overrides[cyc] = random_override_ints(rng, net, nw, lane_masked=True)
        elif cyc % 3 == 2:
            overrides[cyc] = random_override_ints(rng, net, nw, lane_masked=False)
    return nw, stim_rows, overrides


def _compiled_cycles(net, backend, nw, stim_rows, overrides):
    """Per-cycle, per-node word-packed values from a compiled backend."""
    sim = CompiledSimulator(program_for(net), nw, backend=backend)
    assert sim.backend == backend
    out = []
    for cyc, stim in enumerate(stim_rows):
        sim.step(stim, overrides=overrides.get(cyc))
        out.append({nid: sim.value(nid) for nid in net.nodes()})
    return out


def _interpreted_cycles(net, nw, stim_rows, overrides):
    """Same trace from the reference per-gate interpreter (needs numpy)."""
    from repro.netlist.simulate import SequentialSimulator

    def row(v):
        return np.frombuffer(v.to_bytes(8 * nw, "little"), dtype=np.uint64)

    sim = SequentialSimulator(net, n_words=nw, interpreted=True)
    out = []
    for cyc, stim in enumerate(stim_rows):
        ov = overrides.get(cyc)
        values = sim.step(
            {pid: row(v) for pid, v in stim.items()},
            overrides=(
                None
                if ov is None
                else {n: (row(f), row(m)) for n, (f, m) in ov.items()}
            ),
        )
        out.append(
            {
                nid: int.from_bytes(
                    np.ascontiguousarray(values[nid]).tobytes(), "little"
                )
                for nid in net.nodes()
            }
        )
    return out


def _assert_traces_equal(net, got, want, label: str):
    assert len(got) == len(want)
    for cyc, (g, w) in enumerate(zip(got, want)):
        for nid in net.nodes():
            assert g[nid] == w[nid], (
                f"{label}: cycle {cyc}, node {net.node_name(nid)!r}: "
                f"{g[nid]:#x} != {w[nid]:#x}"
            )


def _comb_net(seed: int):
    return random_network(seed, n_pis=10, n_gates=70, n_pos=6)


def _seq_net(seed: int):
    return random_network(seed, n_pis=8, n_gates=60, n_latches=6, n_pos=5)


class TestPythonBackendVsReference:
    """Pure-python leg: generated big-int kernels vs the independent
    big-int reference.  Runs (and must pass) without numpy installed."""

    @pytest.mark.parametrize("width", WIDTHS)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_combinational(self, seed, width):
        net = _comb_net(seed)
        nw, stim, ov = _scenario(net, width, seed)
        want = reference_sequential(net, stim, nw, ov)
        got = _compiled_cycles(net, "python", nw, stim, ov)
        _assert_traces_equal(net, got, want, f"python w={width}")

    @pytest.mark.parametrize("width", WIDTHS)
    @pytest.mark.parametrize("seed", [3, 4])
    def test_sequential(self, seed, width):
        net = _seq_net(seed)
        nw, stim, ov = _scenario(net, width, seed)
        want = reference_sequential(net, stim, nw, ov)
        got = _compiled_cycles(net, "python", nw, stim, ov)
        _assert_traces_equal(net, got, want, f"python w={width}")


@needs_numpy
class TestAllBackendsAgree:
    """Four-way diff: reference vs python-compiled vs numpy-compiled vs
    the per-gate interpreter, every node, every cycle."""

    def _sweep(self, net, width: int, seed: int):
        nw, stim, ov = _scenario(net, width, seed)
        want = reference_sequential(net, stim, nw, ov)
        for label, got in (
            ("python", _compiled_cycles(net, "python", nw, stim, ov)),
            ("numpy", _compiled_cycles(net, "numpy", nw, stim, ov)),
            ("interpreted", _interpreted_cycles(net, nw, stim, ov)),
        ):
            _assert_traces_equal(net, got, want, f"{label} w={width}")

    @pytest.mark.parametrize("width", WIDTHS)
    def test_combinational(self, width):
        self._sweep(_comb_net(11), width, 11)

    @pytest.mark.parametrize("width", WIDTHS)
    def test_sequential(self, width):
        self._sweep(_seq_net(12), width, 12)

    @pytest.mark.parametrize("width", WIDTHS)
    def test_mapped(self, width, mapped_parity_net):
        self._sweep(mapped_parity_net, width, 13)


@pytest.fixture(scope="module")
def mapped_parity_net():
    if not numpy_available():  # pragma: no cover — no-numpy CI job
        pytest.skip("mapping flow needs numpy")
    from repro.core.flow import run_generic_stage
    from repro.workloads import campaign_spec, generate_circuit

    spec = campaign_spec("parity-map", n_gates=110, depth=8, n_pis=14, n_pos=7)
    return run_generic_stage(generate_circuit(spec, 7)).mapping.to_lut_network()


class TestBackendResolution:
    def test_explicit_requests_honoured(self):
        assert resolve_backend("python", n_words=64) == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown simulation backend"):
            resolve_backend("fortran")

    def test_auto_is_width_based(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None, n_words=1) == "python"
        wide = resolve_backend(None, n_words=AUTO_NUMPY_MIN_WORDS)
        assert wide == ("numpy" if numpy_available() else "python")
        assert resolve_backend("auto", n_words=16) == wide

    def test_env_overrides_auto(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert resolve_backend(None, n_words=16) == "python"
        monkeypatch.setenv(BACKEND_ENV, "auto")
        assert resolve_backend(None, n_words=1) == "python"

    def test_env_does_not_override_explicit(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        if numpy_available():
            assert resolve_backend("numpy", n_words=1) == "numpy"
        else:
            with pytest.raises(SimulationError, match="not importable"):
                resolve_backend("numpy", n_words=1)

    @pytest.mark.skipif(
        numpy_available(), reason="needs a numpy-free interpreter"
    )
    def test_explicit_numpy_without_numpy_errors(self):
        with pytest.raises(SimulationError, match="not importable"):
            resolve_backend("numpy", n_words=16)


# -- full-campaign outcome diffs ----------------------------------------------


def _campaign_outcomes_json(scenarios, backend, cache, *, max_turns=16):
    from repro.campaign import CampaignConfig, run_campaign

    report = run_campaign(
        scenarios,
        config=CampaignConfig(
            lane_width=1024, backend=backend, max_turns=max_turns
        ),
        cache=cache,
    )
    assert "error" not in {r.status for r in report.results}
    return json.dumps(report.outcomes(), sort_keys=True)


@needs_numpy
def test_campaign_outcomes_identical_multiword():
    """96-scenario stuck-at campaign (two-word batch at ``lane_width=1024``)
    run per backend: the outcomes JSON must be byte-identical."""
    from repro.campaign import OfflineCache
    from repro.workloads import campaign_spec, stuck_at_scenarios

    spec = campaign_spec("parity-fast", n_gates=420, depth=8, n_pis=32, n_pos=24)
    scenarios = stuck_at_scenarios(spec, 96, horizon=24)
    cache = OfflineCache()
    py = _campaign_outcomes_json(scenarios, "python", cache)
    vec = _campaign_outcomes_json(scenarios, "numpy", cache)
    assert py == vec


@pytest.fixture()
def memoized_designs(monkeypatch):
    """Cache circuit generation per ``(spec, seed)`` for the full-width
    campaign diff: every scenario of a stuck-at campaign shares one golden
    design, but scenario objects regenerate it on demand — at 3000 gates
    that regeneration, not simulation, would dominate the test."""
    import repro.workloads.scenarios as scenarios_mod

    real = scenarios_mod.generate_circuit
    cache = {}

    def memoized(spec, seed=2016, **kwargs):
        key = (spec, seed, tuple(sorted(kwargs.items())))
        net = cache.get(key)
        if net is None:
            net = cache[key] = real(spec, seed, **kwargs)
        return net.copy()

    monkeypatch.setattr(scenarios_mod, "generate_circuit", memoized)


@needs_numpy
@pytest.mark.slow
def test_campaign_outcomes_identical_width_1024(memoized_designs):
    """The flagship diff: a full 1024-scenario stuck-at campaign — one
    single 1024-lane (16-word) batch — run once per backend against a
    shared offline cache.  Outcomes JSON must match byte for byte."""
    from repro.campaign import OfflineCache
    from repro.workloads import campaign_spec, stuck_at_scenarios

    spec = campaign_spec(
        "parity-camp", n_gates=3000, depth=8, n_pis=96, n_pos=80
    )
    scenarios = stuck_at_scenarios(spec, 1024, horizon=24)
    assert len(scenarios) == 1024
    cache = OfflineCache()
    py = _campaign_outcomes_json(scenarios, "python", cache)
    vec = _campaign_outcomes_json(scenarios, "numpy", cache)
    assert py == vec
