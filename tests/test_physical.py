"""Pack, place, route on real designs."""

from __future__ import annotations

import pytest

from repro.arch import ArchSpec
from repro.core.muxnet import build_trace_network
from repro.errors import PackingError
from repro.mapping import AbcMap, TconMap
from repro.pack import build_atoms, pack_design
from repro.place import place_design
from repro.route import route_design
from repro.route.pathfinder import ConnectionRequest, PathFinder


ARCH = ArchSpec(k=6, n_ble=4, n_cluster_inputs=14, channel_width=24, io_capacity=4)


@pytest.fixture(scope="module")
def flow(request):
    """mapping + instrumentation + packing + placement + routing for tiny."""
    from repro.netlist import parse_blif
    from tests.conftest import TINY_SEQ_BLIF

    net = parse_blif(TINY_SEQ_BLIF)
    instr = build_trace_network(net, n_buffer_inputs=2)
    mapping = TconMap(params=instr.param_ids, taps=set(instr.taps)).map(
        instr.network
    )
    physical = build_atoms(mapping, instr)
    packed = pack_design(physical, ARCH)
    placement = place_design(packed, seed=1)
    routing = route_design(placement)
    return instr, mapping, physical, packed, placement, routing


class TestAtoms:
    def test_luts_and_ffs_lowered(self, flow):
        instr, mapping, physical, *_ = flow
        lut_atoms = [a for a in physical.atoms if a.kind == "lut"]
        ff_atoms = [a for a in physical.atoms if a.kind == "ff"]
        assert len(lut_atoms) == mapping.n_luts
        assert len(ff_atoms) == instr.network.n_latches

    def test_params_not_signals(self, flow):
        instr, _m, physical, *_ = flow
        for p in instr.param_ids:
            assert p not in physical.pi_signals

    def test_tunable_groups_exclusive(self, flow):
        from repro.core.boolfunc import mutually_exclusive

        _i, _m, physical, *_ = flow
        for group in physical.tunable_groups.values():
            opts = group.options
            for i in range(len(opts)):
                for j in range(i + 1, len(opts)):
                    assert mutually_exclusive(opts[i][1], opts[j][1])

    def test_tcons_without_space_rejected(self, flow):
        _i, mapping, *_ = flow
        if mapping.tcons:
            with pytest.raises(PackingError):
                build_atoms(mapping, None)


class TestPacking:
    def test_cluster_limits(self, flow):
        packed = flow[3]
        for c in packed.clusters:
            assert len(c.bles) <= ARCH.n_ble
            assert len(c.external_inputs()) <= ARCH.n_cluster_inputs

    def test_all_atoms_packed(self, flow):
        physical, packed = flow[2], flow[3]
        packed_outputs = set()
        for c in packed.clusters:
            for b in c.bles:
                packed_outputs |= b.internal_signals
        for a in physical.atoms:
            assert a.output in packed_outputs

    def test_signal_produced_once(self, flow):
        packed = flow[3]
        assert len(packed.cluster_of_signal) >= packed.n_bles

    def test_stats(self, flow):
        packed = flow[3]
        st = packed.stats()
        assert 0 < st["avg_fill"] <= 1.0


class TestPlacement:
    def test_all_blocks_placed_on_valid_sites(self, flow):
        placement = flow[4]
        grid = placement.grid
        seen = set()
        for b in placement.blocks:
            loc = placement.loc_of[b.index]
            assert loc not in seen
            seen.add(loc)
            x, y, _sub = loc
            tt = grid.tile_type(x, y)
            assert tt.name == ("CLB" if b.kind == "clb" else "IO")

    def test_deterministic(self, flow):
        packed = flow[3]
        p1 = place_design(packed, seed=3)
        p2 = place_design(packed, seed=3)
        assert p1.loc_of == p2.loc_of

    def test_seed_matters(self, flow):
        packed = flow[3]
        p1 = place_design(packed, seed=3)
        p2 = place_design(packed, seed=4)
        assert p1.loc_of != p2.loc_of

    def test_cost_positive(self, flow):
        assert flow[4].cost >= 0.0


class TestRouting:
    def test_no_overuse(self, flow):
        routing = flow[5]
        rr = routing.rr
        from collections import defaultdict

        users = defaultdict(set)
        for c in routing.connections:
            for n in c.tree.nodes:
                users[n].add(c.request.key)
        for n, keys in users.items():
            assert len(keys) <= int(rr.capacity[n]), rr.node_str(n)

    def test_trees_reach_their_sinks(self, flow):
        routing = flow[5]
        for c in routing.connections:
            assert set(c.request.sinks) == set(c.tree.sink_paths)
            for sink, path in c.tree.sink_paths.items():
                assert path[-1] == sink

    def test_sharing_saves_wires(self, flow):
        routing = flow[5]
        assert routing.total_wires_used() <= routing.total_wire_visits()

    def test_switch_conditions(self, flow):
        routing = flow[5]
        switches = routing.used_switch_edges()
        assert len(switches) > 0
        for e in switches:
            assert routing.rr.edge_programmable[e]

    def test_unroutable_raises(self, flow):
        routing = flow[5]
        rr = routing.rr
        pf = PathFinder(rr, max_iterations=1)
        # two different keys forced through a single-capacity sink
        some_clb = next(iter(rr.sink_of.values()))
        src1 = next(iter(rr.pad_source.values()))
        reqs = [
            ConnectionRequest(0, 1, src1, (some_clb,)),
        ]
        trees = pf.route(reqs)  # one net is fine
        assert 0 in trees
