"""Fault injection and VCD export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emu.fault import FaultInjector
from repro.emu.vcd import VcdWriter, write_vcd
from repro.errors import DebugFlowError, SimulationError

ONES = np.array([np.uint64(0xFFFFFFFFFFFFFFFF)], dtype=np.uint64)
ZERO = np.array([np.uint64(0)], dtype=np.uint64)


class TestFaultInjector:
    def test_stuck_at_changes_output(self, tiny_comb):
        net = tiny_comb
        clean = FaultInjector(net)
        faulty = FaultInjector(net)
        faulty.stuck_at("w", 0)
        stim = {
            net.require("x"): ONES,
            net.require("y"): ZERO,
            net.require("z"): ONES,
        }
        v_clean = clean.step(stim)
        v_faulty = faulty.step(stim)
        assert v_clean[net.require("out1")][0] != v_faulty[net.require("out1")][0]

    def test_fault_window(self, tiny_comb):
        net = tiny_comb
        fi = FaultInjector(net)
        fi.stuck_at("w", 0, first_cycle=1, last_cycle=1)
        stim = {
            net.require("x"): ONES,
            net.require("y"): ZERO,
            net.require("z"): ONES,
        }
        first = fi.step(stim)[net.require("out1")][0]
        second = fi.step(stim)[net.require("out1")][0]
        third = fi.step(stim)[net.require("out1")][0]
        assert first == third and second != first

    def test_clear(self, tiny_comb):
        fi = FaultInjector(tiny_comb)
        fi.stuck_at("w", 1)
        fi.clear()
        assert fi._faults == []

    def test_unknown_signal(self, tiny_comb):
        with pytest.raises(SimulationError):
            FaultInjector(tiny_comb).stuck_at("ghost", 0)

    def test_bad_value(self, tiny_comb):
        with pytest.raises(SimulationError):
            FaultInjector(tiny_comb).stuck_at("w", 2)


class TestVcd:
    def test_header_and_changes(self):
        w = VcdWriter(["sig_a", "sig_b"])
        w.sample({"sig_a": 0, "sig_b": 1})
        w.sample({"sig_a": 1, "sig_b": 1})
        text = w.render()
        assert "$timescale 1 ns $end" in text
        assert "$var wire 1" in text
        assert "#1" in text

    def test_no_signals_rejected(self):
        with pytest.raises(DebugFlowError):
            VcdWriter([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(DebugFlowError):
            VcdWriter(["a", "a"])

    def test_write_vcd_file(self, tmp_path):
        path = str(tmp_path / "x.vcd")
        write_vcd(
            {"a": np.array([0, 1, 1]), "b": np.array([1, 1, 0])}, path
        )
        with open(path) as fh:
            content = fh.read()
        assert "$enddefinitions" in content

    def test_write_vcd_length_mismatch(self, tmp_path):
        with pytest.raises(DebugFlowError):
            write_vcd(
                {"a": np.array([0]), "b": np.array([0, 1])},
                str(tmp_path / "y.vcd"),
            )

    def test_write_vcd_empty(self, tmp_path):
        with pytest.raises(DebugFlowError):
            write_vcd({}, str(tmp_path / "z.vcd"))

    def test_identifiers_unique_for_many_signals(self):
        names = [f"s{i}" for i in range(200)]
        w = VcdWriter(names)
        assert len(set(w._ids.values())) == 200
