"""Unit tests for the utility layer."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tracebuffer import LaneTraceBuffer, TraceBuffer
from repro.emu.fault import ALL_LANES, ForcedFault, active_override_ints
from repro.util import (
    DisjointSet,
    IndexedMinHeap,
    RngHub,
    Stopwatch,
    PhaseTimer,
    TextTable,
    derive_seed,
    pack_bits,
    popcount64,
    unpack_bits,
    words_for_bits,
)
from repro.util.bitops import xor_popcount


class TestRng:
    def test_same_seed_same_stream(self):
        a = RngHub(7).stream("x").random(5)
        b = RngHub(7).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        hub = RngHub(7)
        assert hub.stream("a").random() != hub.stream("b").random()

    def test_stream_is_stateful_fresh_is_not(self):
        hub = RngHub(1)
        s = hub.stream("s")
        first = s.random()
        assert hub.stream("s").random() != first  # same (advanced) object
        assert hub.fresh("s").random() == pytest.approx(first)

    def test_derive_seed_stable(self):
        assert derive_seed(42, "abc") == derive_seed(42, "abc")
        assert derive_seed(42, "abc") != derive_seed(43, "abc")
        assert derive_seed(42, "abc") != derive_seed(42, "abd")

    def test_child_hub_independent(self):
        hub = RngHub(3)
        assert hub.child("a").seed != hub.child("b").seed


class TestTiming:
    def test_stopwatch(self):
        sw = Stopwatch()
        with sw:
            pass
        assert sw.elapsed >= 0.0

    def test_stopwatch_stop_before_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_phase_timer_accumulates(self):
        pt = PhaseTimer()
        for _ in range(3):
            with pt.phase("a"):
                pass
        assert pt.counts["a"] == 3
        assert pt.total() == pytest.approx(pt.totals["a"])

    def test_phase_timer_merge(self):
        a, b = PhaseTimer(), PhaseTimer()
        with a.phase("x"):
            pass
        with b.phase("x"):
            pass
        a.merge(b)
        assert a.counts["x"] == 2

    def test_report_contains_phases(self):
        pt = PhaseTimer()
        with pt.phase("route"):
            pass
        assert "route" in pt.report() and "TOTAL" in pt.report()


class TestTextTable:
    def test_render_alignment(self):
        t = TextTable(["n", "v"], aligns="lr")
        t.add_row(["a", 10])
        t.add_row(["bb", 5])
        out = t.render()
        assert "a " in out and " 5" in out

    def test_row_width_mismatch(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_bad_aligns(self):
        with pytest.raises(ValueError):
            TextTable(["a"], aligns="x")
        with pytest.raises(ValueError):
            TextTable(["a", "b"], aligns="l")

    def test_csv(self):
        t = TextTable(["a", "b"])
        t.add_row([1, 2])
        assert t.render_csv() == "a,b\n1,2"


class TestHeap:
    def test_order(self):
        h = IndexedMinHeap()
        for k, p in [(1, 5.0), (2, 1.0), (3, 3.0)]:
            h.push(k, p)
        assert [h.pop()[0] for _ in range(3)] == [2, 3, 1]

    def test_decrease_key(self):
        h = IndexedMinHeap()
        h.push(1, 10.0)
        h.push(2, 5.0)
        h.push(1, 1.0)
        assert h.pop() == (1, 1.0)

    def test_increase_key(self):
        h = IndexedMinHeap()
        h.push(1, 1.0)
        h.push(2, 5.0)
        h.push(1, 10.0)
        assert h.pop() == (2, 5.0)

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().pop()

    def test_contains_priority(self):
        h = IndexedMinHeap()
        h.push(9, 2.5)
        assert h.contains(9) and h.priority(9) == 2.5
        assert not h.contains(1)

    @given(st.lists(st.tuples(st.integers(0, 50), st.floats(0, 100)), max_size=60))
    def test_heap_property(self, items):
        h = IndexedMinHeap()
        latest: dict[int, float] = {}
        for k, p in items:
            h.push(k, p)
            latest[k] = p
        out = []
        while h:
            out.append(h.pop())
        assert sorted(k for k, _ in out) == sorted(latest)
        prios = [p for _, p in out]
        assert prios == sorted(prios)
        for k, p in out:
            assert latest[k] == p


class TestDisjointSet:
    def test_union_find(self):
        d = DisjointSet(4)
        d.union(0, 1)
        d.union(2, 3)
        assert d.same(0, 1) and d.same(2, 3) and not d.same(1, 2)
        assert d.n_sets == 2

    def test_add(self):
        d = DisjointSet(1)
        new = d.add()
        assert new == 1 and d.n_sets == 2

    def test_groups(self):
        d = DisjointSet(3)
        d.union(0, 2)
        groups = d.groups()
        assert sorted(map(sorted, groups.values())) == [[0, 2], [1]]


class TestBitops:
    def test_words_for_bits(self):
        assert [words_for_bits(n) for n in (0, 1, 64, 65, 128)] == [0, 1, 1, 2, 2]

    @given(st.lists(st.integers(0, 1), min_size=0, max_size=300))
    def test_pack_unpack_roundtrip(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        assert unpack_bits(pack_bits(arr), len(bits)).tolist() == bits

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=300))
    def test_popcount_matches_sum(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        assert popcount64(pack_bits(arr)) == sum(bits)

    def test_xor_popcount(self):
        a = pack_bits(np.array([1, 0, 1, 1], dtype=np.uint8))
        b = pack_bits(np.array([1, 1, 0, 1], dtype=np.uint8))
        assert xor_popcount(a, b) == 2

    def test_xor_popcount_shape_mismatch(self):
        with pytest.raises(ValueError):
            xor_popcount(np.zeros(1, np.uint64), np.zeros(2, np.uint64))


class TestLaneMaskAlgebra:
    """Property tests for the word-packed lane-mask accumulation that
    both simulation backends consume (``active_override_ints``)."""

    @given(
        n_words=st.integers(1, 3),
        raw=st.lists(
            st.tuples(
                st.integers(0, 2),  # node
                st.integers(0, 1),  # forced value
                st.one_of(  # absolute lane-index mask, or the sentinel
                    st.just(ALL_LANES), st.integers(0, (1 << 192) - 1)
                ),
                st.integers(0, 3),  # first_cycle
                st.integers(0, 3),  # last_cycle (clamped >= first)
            ),
            max_size=8,
        ),
        cycle=st.integers(0, 3),
    )
    def test_accumulation_matches_per_lane_reference(self, n_words, raw, cycle):
        faults = [
            ForcedFault(
                node=n,
                value=v,
                first_cycle=fc,
                last_cycle=max(fc, lc),
                lane_mask=lm,
            )
            for n, v, lm, fc, lc in raw
        ]
        got = active_override_ints(faults, cycle, n_words=n_words)

        # naive reference: walk every lane of every in-window fault in
        # order; the last fault covering a lane decides its forced bit
        full = (1 << (64 * n_words)) - 1
        ref: dict[int, tuple[int, int]] = {}
        for f in faults:
            if not f.first_cycle <= cycle <= f.last_cycle:
                continue
            lm = full if f.lane_mask == ALL_LANES else f.lane_mask & full
            forced, mask = ref.get(f.node, (0, 0))
            for lane in range(64 * n_words):
                if (lm >> lane) & 1:
                    mask |= 1 << lane
                    if f.value:
                        forced |= 1 << lane
                    else:
                        forced &= ~(1 << lane)
            ref[f.node] = (forced, mask)
        assert got == (ref or None)

    @given(lane=st.integers(0, 191))
    def test_absolute_lane_index_addresses_word_and_bit(self, lane):
        n_words = (lane >> 6) + 1
        ov = active_override_ints(
            [ForcedFault(node=0, value=1, lane_mask=1 << lane)],
            0,
            n_words=n_words,
        )
        forced, mask = ov[0]
        words = [(mask >> (64 * w)) & ALL_LANES for w in range(n_words)]
        assert words[lane >> 6] == 1 << (lane & 63)
        assert sum(1 for w in words if w) == 1
        assert forced == mask


class TestLaneTraceBufferLayout:
    """Multi-word row-layout property: every lane of a packed
    :class:`LaneTraceBuffer` reads back bit-for-bit what a solo
    :class:`TraceBuffer` fed the same per-lane bits would hold —
    including ring wrap-around and per-lane post-trigger freezes."""

    @given(
        width=st.integers(1, 4),
        depth=st.integers(2, 5),
        n_lanes=st.sampled_from([1, 2, 63, 64, 65, 130]),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_lane_windows_match_solo_buffers(self, width, depth, n_lanes, seed):
        rng = random.Random(seed)
        n_words = (n_lanes + 63) >> 6
        # probe a boundary-heavy lane subset (first/last/middle and the
        # first lane of word 1 when it exists) instead of all 130
        probes = sorted({0, n_lanes - 1, n_lanes // 2, min(64, n_lanes - 1)})
        ltb = LaneTraceBuffer(width, depth, n_lanes=n_lanes)
        solos = {lane: TraceBuffer(width, depth) for lane in probes}
        assert ltb.n_words == n_words

        for _ in range(depth + 3):  # +3 exercises the ring wrap
            bits = [
                [rng.getrandbits(1) for _ in range(width)]
                for _ in range(n_lanes)
            ]
            sample = np.zeros((width, n_words), dtype=np.uint64)
            for lane in range(n_lanes):
                w, b = lane >> 6, lane & 63
                for ch in range(width):
                    if bits[lane][ch]:
                        sample[ch, w] |= np.uint64(1) << np.uint64(b)
            trig = {lane for lane in probes if rng.random() < 0.2}
            ltb.capture(
                sample, trigger_mask=sum(1 << lane for lane in trig)
            )
            for lane, solo in solos.items():
                solo.capture(bits[lane], trigger=lane in trig)

        for lane, solo in solos.items():
            assert ltb.window(lane).tolist() == solo.window().tolist()
            assert ltb.stopped(lane) == solo.stopped
            assert ltb.triggered_at(lane) == solo.triggered_at
