"""Unit tests for the utility layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util import (
    DisjointSet,
    IndexedMinHeap,
    RngHub,
    Stopwatch,
    PhaseTimer,
    TextTable,
    derive_seed,
    pack_bits,
    popcount64,
    unpack_bits,
    words_for_bits,
)
from repro.util.bitops import xor_popcount


class TestRng:
    def test_same_seed_same_stream(self):
        a = RngHub(7).stream("x").random(5)
        b = RngHub(7).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        hub = RngHub(7)
        assert hub.stream("a").random() != hub.stream("b").random()

    def test_stream_is_stateful_fresh_is_not(self):
        hub = RngHub(1)
        s = hub.stream("s")
        first = s.random()
        assert hub.stream("s").random() != first  # same (advanced) object
        assert hub.fresh("s").random() == pytest.approx(first)

    def test_derive_seed_stable(self):
        assert derive_seed(42, "abc") == derive_seed(42, "abc")
        assert derive_seed(42, "abc") != derive_seed(43, "abc")
        assert derive_seed(42, "abc") != derive_seed(42, "abd")

    def test_child_hub_independent(self):
        hub = RngHub(3)
        assert hub.child("a").seed != hub.child("b").seed


class TestTiming:
    def test_stopwatch(self):
        sw = Stopwatch()
        with sw:
            pass
        assert sw.elapsed >= 0.0

    def test_stopwatch_stop_before_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_phase_timer_accumulates(self):
        pt = PhaseTimer()
        for _ in range(3):
            with pt.phase("a"):
                pass
        assert pt.counts["a"] == 3
        assert pt.total() == pytest.approx(pt.totals["a"])

    def test_phase_timer_merge(self):
        a, b = PhaseTimer(), PhaseTimer()
        with a.phase("x"):
            pass
        with b.phase("x"):
            pass
        a.merge(b)
        assert a.counts["x"] == 2

    def test_report_contains_phases(self):
        pt = PhaseTimer()
        with pt.phase("route"):
            pass
        assert "route" in pt.report() and "TOTAL" in pt.report()


class TestTextTable:
    def test_render_alignment(self):
        t = TextTable(["n", "v"], aligns="lr")
        t.add_row(["a", 10])
        t.add_row(["bb", 5])
        out = t.render()
        assert "a " in out and " 5" in out

    def test_row_width_mismatch(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_bad_aligns(self):
        with pytest.raises(ValueError):
            TextTable(["a"], aligns="x")
        with pytest.raises(ValueError):
            TextTable(["a", "b"], aligns="l")

    def test_csv(self):
        t = TextTable(["a", "b"])
        t.add_row([1, 2])
        assert t.render_csv() == "a,b\n1,2"


class TestHeap:
    def test_order(self):
        h = IndexedMinHeap()
        for k, p in [(1, 5.0), (2, 1.0), (3, 3.0)]:
            h.push(k, p)
        assert [h.pop()[0] for _ in range(3)] == [2, 3, 1]

    def test_decrease_key(self):
        h = IndexedMinHeap()
        h.push(1, 10.0)
        h.push(2, 5.0)
        h.push(1, 1.0)
        assert h.pop() == (1, 1.0)

    def test_increase_key(self):
        h = IndexedMinHeap()
        h.push(1, 1.0)
        h.push(2, 5.0)
        h.push(1, 10.0)
        assert h.pop() == (2, 5.0)

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().pop()

    def test_contains_priority(self):
        h = IndexedMinHeap()
        h.push(9, 2.5)
        assert h.contains(9) and h.priority(9) == 2.5
        assert not h.contains(1)

    @given(st.lists(st.tuples(st.integers(0, 50), st.floats(0, 100)), max_size=60))
    def test_heap_property(self, items):
        h = IndexedMinHeap()
        latest: dict[int, float] = {}
        for k, p in items:
            h.push(k, p)
            latest[k] = p
        out = []
        while h:
            out.append(h.pop())
        assert sorted(k for k, _ in out) == sorted(latest)
        prios = [p for _, p in out]
        assert prios == sorted(prios)
        for k, p in out:
            assert latest[k] == p


class TestDisjointSet:
    def test_union_find(self):
        d = DisjointSet(4)
        d.union(0, 1)
        d.union(2, 3)
        assert d.same(0, 1) and d.same(2, 3) and not d.same(1, 2)
        assert d.n_sets == 2

    def test_add(self):
        d = DisjointSet(1)
        new = d.add()
        assert new == 1 and d.n_sets == 2

    def test_groups(self):
        d = DisjointSet(3)
        d.union(0, 2)
        groups = d.groups()
        assert sorted(map(sorted, groups.values())) == [[0, 2], [1]]


class TestBitops:
    def test_words_for_bits(self):
        assert [words_for_bits(n) for n in (0, 1, 64, 65, 128)] == [0, 1, 1, 2, 2]

    @given(st.lists(st.integers(0, 1), min_size=0, max_size=300))
    def test_pack_unpack_roundtrip(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        assert unpack_bits(pack_bits(arr), len(bits)).tolist() == bits

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=300))
    def test_popcount_matches_sum(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        assert popcount64(pack_bits(arr)) == sum(bits)

    def test_xor_popcount(self):
        a = pack_bits(np.array([1, 0, 1, 1], dtype=np.uint8))
        b = pack_bits(np.array([1, 1, 0, 1], dtype=np.uint8))
        assert xor_popcount(a, b) == 2

    def test_xor_popcount_shape_mismatch(self):
        with pytest.raises(ValueError):
            xor_popcount(np.zeros(1, np.uint64), np.zeros(2, np.uint64))
