"""LogicNetwork structure, mutation and validation."""

from __future__ import annotations

import pytest

from repro.errors import NetlistError
from repro.netlist import LogicNetwork, NodeKind, validate_network
from repro.netlist.truthtable import TruthTable

AND2 = TruthTable.var(0, 2) & TruthTable.var(1, 2)
OR2 = TruthTable.var(0, 2) | TruthTable.var(1, 2)


def small_net() -> LogicNetwork:
    net = LogicNetwork("t")
    a = net.add_pi("a")
    b = net.add_pi("b")
    f = net.add_gate("f", (a, b), AND2)
    q = net.add_latch("q", init=1)
    net.set_latch_driver(q, f)
    g = net.add_gate("g", (q, a), OR2)
    net.add_po("g")
    return net


class TestConstruction:
    def test_counts(self):
        net = small_net()
        assert (net.n_pis, net.n_gates, net.n_latches) == (2, 2, 1)

    def test_duplicate_name(self):
        net = LogicNetwork()
        net.add_pi("a")
        with pytest.raises(NetlistError):
            net.add_pi("a")

    def test_gate_arity_check(self):
        net = LogicNetwork()
        a = net.add_pi("a")
        with pytest.raises(NetlistError):
            net.add_gate("g", (a,), AND2)

    def test_undefined_fanin(self):
        net = LogicNetwork()
        with pytest.raises(NetlistError):
            net.add_gate("g", (5,), TruthTable.var(0, 1))

    def test_bad_latch_init(self):
        net = LogicNetwork()
        with pytest.raises(NetlistError):
            net.add_latch("q", init=7)

    def test_const_gate(self):
        net = LogicNetwork()
        c = net.add_const("one", 1)
        assert net.func(c).const_value() == 1

    def test_set_latch_driver_non_latch(self):
        net = small_net()
        with pytest.raises(NetlistError):
            net.set_latch_driver(net.require("g"), 0)


class TestQueries:
    def test_find_require(self):
        net = small_net()
        assert net.find("f") == net.require("f")
        assert net.find("nope") is None
        with pytest.raises(NetlistError):
            net.require("nope")

    def test_sources(self):
        net = small_net()
        srcs = net.sources()
        assert net.require("a") in srcs and net.require("q") in srcs

    def test_topo_order_sources_first(self):
        net = small_net()
        order = net.topo_order()
        pos = {n: i for i, n in enumerate(order)}
        for nid in net.gates():
            for f in net.fanins(nid):
                assert pos[f] < pos[nid]

    def test_topo_cycle_detection(self):
        net = LogicNetwork()
        a = net.add_pi("a")
        g1 = net.add_gate("g1", (a, a), AND2)  # placeholder fanins
        g2 = net.add_gate("g2", (g1, a), AND2)
        net.rewire(g1, (g2, a), AND2)  # creates a combinational cycle
        with pytest.raises(NetlistError):
            net.topo_order()

    def test_fanouts_and_counts(self):
        net = small_net()
        outs = net.fanouts()
        assert net.require("g") in outs[net.require("q")]
        counts = net.fanout_counts()
        assert counts[net.require("f")] == 1  # read by the latch
        assert counts[net.require("g")] == 1  # read by the PO

    def test_transitive_fanin(self):
        net = small_net()
        cone = net.transitive_fanin([net.require("g")])
        assert net.require("q") in cone and net.require("a") in cone


class TestMutation:
    def test_replace_uses(self):
        net = small_net()
        a, b = net.require("a"), net.require("b")
        net.replace_uses(a, b)
        assert a not in net.fanins(net.require("g"))

    def test_replace_uses_fixes_po(self):
        net = LogicNetwork()
        a = net.add_pi("a")
        g = net.add_gate("g", (a,), TruthTable.var(0, 1))
        h = net.add_gate("h", (a,), ~TruthTable.var(0, 1))
        net.add_po("g")
        net.replace_uses(g, h)
        assert net.po_names == ["h"]

    def test_rename_node(self):
        net = small_net()
        net.rename_node(net.require("g"), "out")
        assert net.po_names == ["out"]
        assert net.find("g") is None

    def test_rename_collision(self):
        net = small_net()
        with pytest.raises(NetlistError):
            net.rename_node(net.require("g"), "f")

    def test_fresh_name(self):
        net = small_net()
        assert net.fresh_name("zz") == "zz"
        assert net.fresh_name("f") != "f"

    def test_compact_drops_dead(self):
        net = small_net()
        a = net.require("a")
        dead = net.add_gate("dead", (a,), TruthTable.var(0, 1))
        out = net.compact()
        assert out.find("dead") is None
        validate_network(out)

    def test_compact_keeps_protected(self):
        net = small_net()
        a = net.require("a")
        keep = net.add_gate("keepme", (a,), TruthTable.var(0, 1))
        out = net.compact(keep=[keep])
        assert out.find("keepme") is not None

    def test_copy_independent(self):
        net = small_net()
        cp = net.copy()
        cp.add_pi("new")
        assert net.find("new") is None


class TestValidate:
    def test_valid(self, tiny_seq):
        validate_network(tiny_seq)

    def test_no_pos(self):
        net = LogicNetwork()
        net.add_pi("a")
        with pytest.raises(NetlistError):
            validate_network(net)
        validate_network(net, require_pos=False)

    def test_undriven_latch(self):
        net = LogicNetwork()
        net.add_pi("a")
        net.add_latch("q")
        net.add_po("q")
        with pytest.raises(NetlistError):
            validate_network(net)
