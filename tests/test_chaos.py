"""End-to-end chaos matrix: a campaign with exactly one injected fault —
worker SIGKILL, broken pool, hung task, torn store write, or a killed
parent process — must converge to outcomes byte-identical to the
fault-free baseline (recomputing, retrying or resuming as needed), at
both serial and parallel worker counts."""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys

import pytest

from repro.campaign import CampaignConfig, run_campaign
from repro.campaign.cache import ArtifactStore
from repro.util import chaos
from repro.workloads import campaign_spec, stuck_at_scenarios

SPEC = campaign_spec("chaos-a", n_gates=80, depth=6, n_pis=12, n_pos=6)
HORIZON = 48
WORKERS = (1, 4)


@pytest.fixture(scope="module")
def scenarios():
    return stuck_at_scenarios(SPEC, 4, horizon=HORIZON)


@pytest.fixture(scope="module")
def baseline(scenarios):
    """Fault-free outcomes JSON every chaos run must reproduce."""
    report = run_campaign(
        scenarios, config=CampaignConfig(workers=1), cache=ArtifactStore()
    )
    return _outcomes_json(report)


def _outcomes_json(report) -> str:
    """The campaign CLI's outcomes serialization (byte-comparable)."""
    return json.dumps(report.outcomes(), indent=2, default=str)


def _armed_run(once_dir, scenarios, config, cache=None, **spec):
    # NB: an empty ArtifactStore is falsy (len == 0) — `cache or ...`
    # would silently swap a fresh disk store for a memory one
    if cache is None:
        cache = ArtifactStore()
    chaos.arm(str(once_dir), **spec)
    try:
        return run_campaign(scenarios, config=config, cache=cache)
    finally:
        chaos.disarm()


class TestWorkerFaults:
    """Faults inside pooled workers.  At ``workers=1`` nothing is pooled,
    so the hooks never fire — the matrix row degenerates to the baseline,
    which is exactly the claim (armed-but-unreachable chaos is inert)."""

    @pytest.mark.parametrize("workers", WORKERS)
    def test_worker_sigkill_recovers(
        self, tmp_path, scenarios, baseline, workers
    ):
        report = _armed_run(
            tmp_path,
            scenarios,
            # lane_width=1 keeps one online payload per scenario — a
            # single packed batch would make the orchestrator skip the
            # pool entirely (serial is cheaper than pool startup)
            CampaignConfig(workers=workers, lane_width=1),
            kill_worker_at_task=1,
        )
        assert _outcomes_json(report) == baseline

    @pytest.mark.parametrize("workers", WORKERS)
    def test_injected_pool_error_recovers(
        self, tmp_path, scenarios, baseline, workers
    ):
        report = _armed_run(
            tmp_path,
            scenarios,
            CampaignConfig(workers=workers, lane_width=1),
            pool_error_at_task=1,
        )
        assert _outcomes_json(report) == baseline
        if workers > 1:
            assert report.pool_respawns >= 1

    @pytest.mark.parametrize("workers", WORKERS)
    def test_hung_online_task_times_out_and_retries(
        self, tmp_path, scenarios, baseline, workers
    ):
        report = _armed_run(
            tmp_path,
            scenarios,
            CampaignConfig(
                workers=workers,
                lane_width=1,
                task_timeout_s=2.0,
                task_retries=1,
            ),
            delay_task={"match": "lanes", "seconds": 30.0},
        )
        assert _outcomes_json(report) == baseline
        if workers > 1:
            assert report.timeouts >= 1
            assert report.retries >= 1


class TestStoreFaults:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_torn_store_write_quarantined_on_next_run(
        self, tmp_path, scenarios, baseline, workers
    ):
        cache_dir = str(tmp_path / "cache")
        # run 1 (armed): the first persisted artifact is torn mid-write;
        # its in-memory copy keeps this run correct
        report1 = _armed_run(
            tmp_path,
            scenarios,
            CampaignConfig(workers=workers),
            cache=ArtifactStore(cache_dir=cache_dir),
            truncate_store_at_put=1,
        )
        assert _outcomes_json(report1) == baseline
        # run 2 (disarmed, cold store on the same dir): the torn entry
        # must surface as quarantine + rebuild, never an exception
        store = ArtifactStore(cache_dir=cache_dir)
        report2 = run_campaign(
            scenarios, config=CampaignConfig(workers=workers), cache=store
        )
        assert _outcomes_json(report2) == baseline
        assert store.stats.corrupt == 1
        assert os.listdir(os.path.join(cache_dir, "quarantine"))


class TestFailFast:
    def _with_bad_design(self, scenarios):
        bad = dataclasses.replace(
            scenarios[0],
            name="bad",
            # depth > n_gates is ungeneratable -> registration failure
            spec=campaign_spec("chaos-bad", n_gates=2, depth=7),
        )
        return [bad, *scenarios]

    def test_fail_fast_aborts_pending_as_placeholders(self, scenarios):
        report = run_campaign(
            self._with_bad_design(scenarios),
            config=CampaignConfig(workers=2, fail_fast=True),
            cache=ArtifactStore(),
        )
        assert report.results[0].status == "error"
        assert all(r.status == "error" for r in report.results)
        assert all(
            "fail-fast" in r.error for r in report.results[1:]
        )
        assert any("fail-fast" in note for note in report.notes)

    def test_keep_going_isolates_the_failure(self, scenarios, baseline):
        report = run_campaign(
            self._with_bad_design(scenarios),
            config=CampaignConfig(workers=2, fail_fast=False),
            cache=ArtifactStore(),
        )
        assert report.results[0].status == "error"
        assert _outcomes_json(
            dataclasses.replace(report, results=report.results[1:])
        ) == baseline


class TestResume:
    def test_full_journal_replays_byte_identical(self, scenarios, tmp_path):
        cache_dir = str(tmp_path / "c")
        cfg = CampaignConfig(workers=1, campaign_id="camp")
        first = run_campaign(
            scenarios, config=cfg, cache=ArtifactStore(cache_dir=cache_dir)
        )
        assert first.resumed_scenarios == 0
        assert first.journal_path.endswith("camp.jsonl")

        second = run_campaign(
            scenarios,
            config=dataclasses.replace(cfg, resume=True),
            cache=ArtifactStore(cache_dir=cache_dir),
        )
        assert _outcomes_json(second) == _outcomes_json(first)
        assert second.resumed_scenarios == len(scenarios)
        assert "resilience:" in second.render()

    def test_resume_tolerates_different_worker_count(
        self, scenarios, tmp_path
    ):
        # the fingerprint excludes execution knobs on purpose: a campaign
        # interrupted at --workers 4 may be finished at --workers 1
        cache_dir = str(tmp_path / "c")
        first = run_campaign(
            scenarios,
            config=CampaignConfig(workers=4, campaign_id="camp"),
            cache=ArtifactStore(cache_dir=cache_dir),
        )
        second = run_campaign(
            scenarios,
            config=CampaignConfig(workers=1, campaign_id="camp", resume=True),
            cache=ArtifactStore(cache_dir=cache_dir),
        )
        assert _outcomes_json(second) == _outcomes_json(first)
        assert second.resumed_scenarios == len(scenarios)


class TestParentKill:
    """The tentpole acceptance test: SIGKILL the orchestrator process
    mid-campaign, ``--resume`` it, and diff the outcomes JSON against an
    uninterrupted run byte-for-byte."""

    def _cli(self, tmp_path, extra, chaos_spec=None):
        env = {**os.environ, "PYTHONPATH": "src"}
        env.pop(chaos.ENV_VAR, None)
        if chaos_spec is not None:
            env[chaos.ENV_VAR] = json.dumps(
                {**chaos_spec, "dir": str(tmp_path)}
            )
        return subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.campaign",
                "--per-design",
                "3",
                "--horizon",
                "48",
                *extra,
            ],
            env=env,
            cwd="/root/repo",
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_parent_sigkill_then_resume_byte_identical(self, tmp_path):
        base_json = tmp_path / "base.json"
        resumed_json = tmp_path / "resumed.json"

        clean = self._cli(
            tmp_path,
            [
                "--cache-dir",
                str(tmp_path / "c0"),
                "--outcomes-json",
                str(base_json),
            ],
        )
        assert clean.returncode == 0, clean.stderr

        # armed run: SIGKILL the parent right after the first scenario
        # lands in the journal (append 1 is the header)
        killed = self._cli(
            tmp_path,
            [
                "--cache-dir",
                str(tmp_path / "c1"),
                "--campaign-id",
                "night",
            ],
            chaos_spec={"kill_parent_at_append": 2},
        )
        assert killed.returncode == -signal.SIGKILL

        resumed = self._cli(
            tmp_path,
            [
                "--cache-dir",
                str(tmp_path / "c1"),
                "--resume",
                "night",
                "--outcomes-json",
                str(resumed_json),
            ],
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed 1 of 3 scenario(s)" in resumed.stdout
        assert "resilience:" in resumed.stdout
        assert resumed_json.read_bytes() == base_json.read_bytes()

    def test_resume_without_journal_exits_2(self, tmp_path):
        r = self._cli(
            tmp_path,
            ["--cache-dir", str(tmp_path / "c"), "--resume", "ghost"],
        )
        assert r.returncode == 2
        assert "no journal found" in r.stderr

    def test_journal_requires_cache_dir(self, tmp_path):
        r = self._cli(tmp_path, ["--campaign-id", "x"])
        assert r.returncode == 2
        assert "--cache-dir" in r.stderr
