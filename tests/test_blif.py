"""BLIF parsing and writing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BlifParseError
from repro.netlist import (
    check_equivalent,
    parse_blif,
    validate_network,
    write_blif,
)
from repro.workloads import generate_circuit
from repro.workloads.suites import BenchmarkSpec


class TestParse:
    def test_basic(self, tiny_seq):
        assert tiny_seq.name == "tiny"
        assert tiny_seq.n_pis == 3 and tiny_seq.n_latches == 1

    def test_comments_and_continuations(self):
        net = parse_blif(
            ".model m  # trailing comment\n"
            ".inputs a \\\n b\n"
            ".outputs f\n"
            ".names a b f\n11 1\n.end\n"
        )
        assert net.n_pis == 2

    def test_out_of_order_names(self):
        net = parse_blif(
            ".model m\n.inputs a\n.outputs f\n"
            ".names t f\n1 1\n"       # uses t before it's defined
            ".names a t\n0 1\n.end\n"
        )
        validate_network(net)

    def test_const_names(self):
        net = parse_blif(
            ".model m\n.inputs a\n.outputs f one\n"
            ".names one\n1\n.names a one f\n11 1\n.end\n"
        )
        assert net.func(net.require("one")).const_value() == 1

    def test_offset_polarity(self):
        net = parse_blif(
            ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n"
        )
        tt = net.func(net.require("f"))
        assert tt.eval_point([1, 1]) == 0 and tt.eval_point([0, 1]) == 1

    def test_latch_init_parsing(self):
        net = parse_blif(
            ".model m\n.inputs a\n.outputs q\n.latch a q re clk 1\n.end\n"
        )
        assert net.latches[0].init == 1

    def test_mixed_polarity_rejected(self):
        with pytest.raises(BlifParseError):
            parse_blif(
                ".model m\n.inputs a b\n.outputs f\n"
                ".names a b f\n11 1\n00 0\n.end\n"
            )

    def test_unsupported_subckt(self):
        with pytest.raises(BlifParseError):
            parse_blif(".model m\n.subckt foo a=b\n.end\n")

    def test_undefined_signal(self):
        with pytest.raises(BlifParseError):
            parse_blif(".model m\n.inputs a\n.outputs f\n.names ghost f\n1 1\n.end\n")

    def test_plane_width_mismatch(self):
        with pytest.raises(BlifParseError) as e:
            parse_blif(".model m\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end\n")
        assert e.value.line_no is not None

    def test_stray_plane(self):
        with pytest.raises(BlifParseError):
            parse_blif(".model m\n11 1\n.end\n")

    def test_output_without_driver(self):
        with pytest.raises(BlifParseError):
            parse_blif(".model m\n.inputs a\n.outputs zz\n.end\n")

    def test_latch_redefined(self):
        with pytest.raises(BlifParseError):
            parse_blif(
                ".model m\n.inputs a\n.outputs q\n"
                ".latch a q 0\n.latch a q 0\n.end\n"
            )


class TestWrite:
    def test_roundtrip_function(self, tiny_seq):
        text = write_blif(tiny_seq)
        again = parse_blif(text)
        validate_network(again)
        assert check_equivalent(tiny_seq, again, n_vectors=64, n_cycles=6)

    def test_writes_latches(self, tiny_seq):
        assert ".latch" in write_blif(tiny_seq)

    def test_const_zero_gate(self):
        net = parse_blif(
            ".model m\n.inputs a\n.outputs f z\n"
            ".names z\n.names a z f\n10 1\n.end\n"
        )
        text = write_blif(net)
        again = parse_blif(text)
        assert again.func(again.require("z")).const_value() == 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31))
    def test_generated_roundtrip(self, seed):
        spec = BenchmarkSpec(
            name="rt",
            n_gates=40,
            golden_depth=4,
            paper_initial_luts=0,
            paper_sm_luts=0,
            paper_abc_luts=0,
            paper_proposed_luts=0,
            paper_tluts=0,
            paper_tcons=0,
            n_latches=3,
            n_pis=5,
            n_pos=4,
            gate_depth_target=6,
        )
        net = generate_circuit(spec, seed)
        again = parse_blif(write_blif(net))
        validate_network(again)
        assert check_equivalent(net, again, n_vectors=64, n_cycles=4)
