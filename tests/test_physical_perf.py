"""PR 5's fast offline physical pipeline: determinism, quality, parity.

Three families of guarantees around the vectorized placer/router rewrite
and the parallel offline build scheduler:

* **seed determinism** — the rewritten annealer and PathFinder produce
  bit-identical results for a fixed seed (and different placements for
  different seeds), including the incremental-HPWL bookkeeping matching
  a from-scratch recomputation;
* **quality gates** — on the paper-suite design, the rewritten placer's
  final HPWL and the rewritten router's wirelength/overuse are
  equal-or-better than the reference implementations they replaced
  (:mod:`repro.place.ref`, :mod:`repro.route.ref`);
* **offline-workers parity** — a campaign run with ``offline_workers=4``
  produces byte-identical outcomes JSON to serial offline builds, for
  memory-only and disk-backed stores, cold and warm.
"""

from __future__ import annotations

import json

import pytest

from repro.arch import ArchSpec
from repro.arch.routing_graph import build_rr_graph
from repro.campaign import CampaignConfig, run_campaign
from repro.campaign.cache import ArtifactStore, OfflineCache
from repro.core.muxnet import build_trace_network
from repro.mapping import TconMap
from repro.pack import build_atoms, pack_design
from repro.place import place_design
from repro.place.ref import _net_hpwl, place_design_ref
from repro.route import route_design
from repro.route.ref import PathFinderRef
from repro.workloads import campaign_spec, generate_circuit, mutation_scenarios

ARCH = ArchSpec(k=6, n_ble=4, n_cluster_inputs=14, channel_width=24, io_capacity=4)


def _pack(net):
    instr = build_trace_network(net, n_buffer_inputs=2)
    mapping = TconMap(params=instr.param_ids, taps=set(instr.taps)).map(
        instr.network
    )
    return pack_design(build_atoms(mapping, instr), ARCH)


@pytest.fixture(scope="module")
def packed_small():
    spec = campaign_spec("perf-small", n_gates=70, depth=6, n_pis=12, n_pos=6)
    return _pack(generate_circuit(spec))


class TestPlacerRewrite:
    def test_seed_deterministic(self, packed_small):
        a = place_design(packed_small, seed=11)
        b = place_design(packed_small, seed=11)
        assert a.loc_of == b.loc_of
        assert a.cost == b.cost
        assert a.moves_tried == b.moves_tried

    def test_seed_changes_placement(self, packed_small):
        a = place_design(packed_small, seed=11)
        b = place_design(packed_small, seed=12)
        assert a.loc_of != b.loc_of

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_incremental_cost_matches_recompute(self, packed_small, seed):
        """The incremental bounding-box ledger must land on exactly the
        HPWL a from-scratch recomputation gives — any drift means a bad
        boundary-count update."""
        p = place_design(packed_small, seed=seed)
        recomputed = sum(_net_hpwl(net, p.loc_of) for net in p.nets)
        assert p.cost == pytest.approx(recomputed, abs=1e-9)

    def test_blocks_on_distinct_valid_sites(self, packed_small):
        p = place_design(packed_small, seed=3)
        seen = set()
        for b in p.blocks:
            loc = p.loc_of[b.index]
            assert loc not in seen
            seen.add(loc)
            tt = p.grid.tile_type(loc[0], loc[1])
            assert tt.name == ("CLB" if b.kind == "clb" else "IO")


class TestRouterRewrite:
    def test_seed_deterministic(self, packed_small):
        p = place_design(packed_small, seed=5)
        a = route_design(p, build_rr_graph(p.grid))
        b = route_design(p, build_rr_graph(p.grid))
        assert [c.tree.nodes for c in a.connections] == [
            c.tree.nodes for c in b.connections
        ]
        assert [c.tree.edges for c in a.connections] == [
            c.tree.edges for c in b.connections
        ]

    def test_no_overuse_and_sinks_reached(self, packed_small):
        p = place_design(packed_small, seed=5)
        routing = route_design(p, build_rr_graph(p.grid))
        rr = routing.rr
        users: dict[int, set[int]] = {}
        for c in routing.connections:
            assert set(c.request.sinks) == set(c.tree.sink_paths)
            for n in c.tree.nodes:
                users.setdefault(n, set()).add(c.request.key)
        for n, keys in users.items():
            assert len(keys) <= int(rr.capacity[n]), rr.node_str(n)


@pytest.mark.slow
class TestQualityGates:
    """Rewritten vs reference on the paper-suite design (stereov.)."""

    @pytest.fixture(scope="class")
    def packed_paper(self):
        from repro.workloads import get_spec

        return _pack(generate_circuit(get_spec("stereov.")))

    # A single seed's anneal outcome swings ±1% with any change to the
    # packed input (the PR 10 mapping rewrite shifted same-rank cut
    # tie-breaks), so the quality gate compares across a small seed set:
    # the placers' best results must be equal-or-better and the summed
    # HPWL within 1% — a systematic regression fails both.
    SEEDS = (2016, 7, 123)

    def test_placer_hpwl_equal_or_better(self, packed_paper):
        new = [
            place_design(packed_paper, seed=s, effort=2.0).cost
            for s in self.SEEDS
        ]
        ref = [
            place_design_ref(packed_paper, seed=s, effort=2.0).cost
            for s in self.SEEDS
        ]
        assert min(new) <= min(ref), (
            f"rewritten placer best HPWL {min(new)} worse than reference "
            f"best {min(ref)} over seeds {self.SEEDS}"
        )
        assert sum(new) <= 1.01 * sum(ref), (
            f"rewritten placer HPWL {new} systematically worse than "
            f"reference {ref}"
        )

    def test_router_equal_or_better(self, packed_paper):
        new_p = place_design(packed_paper, seed=2016, effort=2.0)
        ref_p = place_design_ref(packed_paper, seed=2016, effort=2.0)
        new = route_design(new_p, build_rr_graph(new_p.grid))
        ref = route_design(
            ref_p, build_rr_graph(ref_p.grid), pathfinder=PathFinderRef
        )
        # both routers must reach legality (zero overuse, by construction
        # of route(); reaching here without UnroutableError proves it) and
        # the rewrite must not pay materially more wires than the
        # reference flow (same ±1% anneal-outcome tolerance as above:
        # each router pays for its own placer's placement)
        assert new.total_wires_used() <= 1.01 * ref.total_wires_used()
        assert new.iterations <= ref.iterations


def _outcomes_json(report) -> str:
    """The campaign CLI's outcomes serialization (byte-comparable)."""
    return json.dumps(report.outcomes(), indent=2, default=str)


class TestOfflineWorkersParity:
    @pytest.fixture(scope="class")
    def scenarios(self):
        spec = campaign_spec(
            "perf-parity", n_gates=60, depth=6, n_pis=12, n_pos=6
        )
        # mutations: each scenario is its own design → 5 distinct builds
        return mutation_scenarios(spec, 5, seed=3, horizon=32)

    def test_memory_store_parity(self, scenarios):
        serial = run_campaign(
            scenarios,
            config=CampaignConfig(offline_workers=1),
            cache=ArtifactStore(),
        )
        parallel = run_campaign(
            scenarios,
            config=CampaignConfig(offline_workers=4),
            cache=ArtifactStore(),
        )
        assert _outcomes_json(parallel) == _outcomes_json(serial)
        assert parallel.offline_workers >= 1

    def test_disk_store_parity_and_warm_restart(self, scenarios, tmp_path):
        serial = run_campaign(
            scenarios,
            config=CampaignConfig(offline_workers=1),
            cache=ArtifactStore(cache_dir=str(tmp_path / "serial")),
        )
        par_store = ArtifactStore(cache_dir=str(tmp_path / "par"))
        parallel = run_campaign(
            scenarios,
            config=CampaignConfig(offline_workers=4),
            cache=par_store,
        )
        assert _outcomes_json(parallel) == _outcomes_json(serial)
        # artifacts landed under the same content-addressed keys: a serial
        # run over the parallel-built store must be fully warm
        warm = run_campaign(
            scenarios,
            config=CampaignConfig(offline_workers=1),
            cache=ArtifactStore(cache_dir=str(tmp_path / "par")),
        )
        assert _outcomes_json(warm) == _outcomes_json(serial)
        assert warm.cache_stats["misses"] == 0
        assert all(r.offline_cache_hit for r in warm.results)

    def test_whole_artifact_cache_parity(self, scenarios):
        serial = run_campaign(
            scenarios,
            config=CampaignConfig(offline_workers=1),
            cache=OfflineCache(),
        )
        parallel = run_campaign(
            scenarios,
            config=CampaignConfig(offline_workers=4),
            cache=OfflineCache(),
        )
        assert _outcomes_json(parallel) == _outcomes_json(serial)

    def test_cold_parity_no_cache(self, scenarios):
        serial = run_campaign(
            scenarios, config=CampaignConfig(offline_workers=1), cache=None
        )
        parallel = run_campaign(
            scenarios, config=CampaignConfig(offline_workers=4), cache=None
        )
        assert _outcomes_json(parallel) == _outcomes_json(serial)

    def test_warm_groups_resolve_in_process(self, scenarios):
        """A fully warm store dispatches no build workers."""
        store = ArtifactStore()
        run_campaign(
            scenarios, config=CampaignConfig(offline_workers=1), cache=store
        )
        warm = run_campaign(
            scenarios, config=CampaignConfig(offline_workers=4), cache=store
        )
        assert warm.offline_workers == 1  # nothing cold to parallelize
        assert warm.offline_stage_s == {}  # nothing was built
        assert all(r.offline_cache_hit for r in warm.results)

    def test_single_design_campaign_groups_once(self):
        """Stuck-at scenarios share one design: one build group, and the
        duplicates ride the first build as cache hits."""
        from repro.workloads import stuck_at_scenarios

        spec = campaign_spec(
            "perf-single", n_gates=60, depth=6, n_pis=12, n_pos=6
        )
        scenarios = stuck_at_scenarios(spec, 4, seed=5, horizon=32)
        serial = run_campaign(
            scenarios,
            config=CampaignConfig(offline_workers=1),
            cache=ArtifactStore(),
        )
        parallel = run_campaign(
            scenarios,
            config=CampaignConfig(offline_workers=4),
            cache=ArtifactStore(),
        )
        assert _outcomes_json(parallel) == _outcomes_json(serial)
        hits = [r.offline_cache_hit for r in parallel.results]
        assert hits == [False, True, True, True]

    def test_per_stage_offline_timings_recorded(self, scenarios):
        report = run_campaign(
            scenarios,
            config=CampaignConfig(offline_workers=2),
            cache=ArtifactStore(),
        )
        assert "tcon-map" in report.offline_stage_s
        assert report.offline_wall_s > 0.0
        assert sum(report.offline_stage_s.values()) > 0.0
        # and the renderer surfaces them
        assert "offline stages built:" in report.render()
