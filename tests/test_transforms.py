"""Netlist cleanup transforms."""

from __future__ import annotations

import pytest

from repro.netlist import (
    LogicNetwork,
    check_equivalent,
    parse_blif,
    propagate_constants,
    remove_buffers,
    sweep_dead,
    validate_network,
)
from repro.netlist.transforms import cleanup
from repro.netlist.truthtable import TruthTable

AND2 = TruthTable.var(0, 2) & TruthTable.var(1, 2)


class TestConstProp:
    def test_folds_constant_input(self):
        net = LogicNetwork()
        a = net.add_pi("a")
        one = net.add_const("one", 1)
        g = net.add_gate("g", (a, one), AND2)
        net.add_po("g")
        n = propagate_constants(net)
        assert n >= 1
        assert net.fanins(net.require("g")) == (a,)
        assert net.func(net.require("g")) == TruthTable.var(0, 1)

    def test_collapse_to_constant(self):
        net = LogicNetwork()
        a = net.add_pi("a")
        zero = net.add_const("zero", 0)
        g = net.add_gate("g", (a, zero), AND2)
        net.add_po("g")
        propagate_constants(net)
        assert net.func(net.require("g")).const_value() == 0

    def test_iterates_to_fixpoint(self):
        net = LogicNetwork()
        a = net.add_pi("a")
        one = net.add_const("one", 1)
        g1 = net.add_gate("g1", (a, one), TruthTable.var(1, 2))  # = const 1
        g2 = net.add_gate("g2", (a, g1), AND2)
        net.add_po("g2")
        propagate_constants(net)
        assert net.func(net.require("g2")) == TruthTable.var(0, 1)


class TestBufferRemoval:
    def test_bypasses_buffer(self):
        net = LogicNetwork()
        a = net.add_pi("a")
        buf = net.add_gate("buf", (a,), TruthTable.var(0, 1))
        g = net.add_gate("g", (buf, a), AND2)
        net.add_po("g")
        assert remove_buffers(net) == 1
        assert buf not in net.fanins(net.require("g"))

    def test_keeps_inverters(self):
        net = LogicNetwork()
        a = net.add_pi("a")
        inv = net.add_gate("inv", (a,), ~TruthTable.var(0, 1))
        net.add_po("inv")
        assert remove_buffers(net) == 0

    def test_protected_buffers_survive(self):
        net = LogicNetwork()
        a = net.add_pi("a")
        buf = net.add_gate("buf", (a,), TruthTable.var(0, 1))
        net.add_po("buf")
        assert remove_buffers(net, protected=[buf]) == 0


class TestSweepCleanup:
    def test_sweep_drops_unreachable(self, tiny_seq):
        net = tiny_seq.copy()
        a = net.require("a")
        net.add_gate("orphan", (a,), TruthTable.var(0, 1))
        swept = sweep_dead(net)
        assert swept.find("orphan") is None
        validate_network(swept)

    def test_cleanup_equivalent(self, tiny_seq):
        out = cleanup(tiny_seq)
        validate_network(out)
        assert check_equivalent(tiny_seq, out)

    def test_cleanup_on_constant_rich_net(self):
        net = parse_blif(
            ".model m\n.inputs a\n.outputs f\n"
            ".names one\n1\n"
            ".names a one t\n11 1\n"
            ".names t f\n1 1\n.end\n"
        )
        out = cleanup(net)
        validate_network(out)
        assert check_equivalent(net, out)
