"""Supervision layer of the dataflow scheduler: deterministic retry
backoff, per-task timeouts, pool respawn with in-flight recovery, the
fail-fast abort, and the campaign journal's crash-consistent format."""

from __future__ import annotations

import os
import time

import pytest

from repro.campaign.journal import CampaignJournal, JOURNAL_VERSION
from repro.errors import POOL_ERRORS as ERRORS_CANONICAL
from repro.pipeline.scheduler import (
    POOL_ERRORS,
    DataflowScheduler,
    ScheduledTask,
    retry_delay,
)
from repro.util import chaos
from repro.util.intra import POOL_ERRORS as INTRA_POOL_ERRORS


def _real_pool(n):
    from concurrent.futures import ProcessPoolExecutor

    return ProcessPoolExecutor(max_workers=n)


# -- module-level (picklable) worker bodies ------------------------------------


def _double(x):
    return x * 2


def _always_raises(_x):
    raise ValueError("deterministically bad task")


def _slow_first_attempt(payload):
    """Sleeps far past any test timeout on the first call (marker file
    absent), returns instantly on the retry — a deterministic hang."""
    marker, value = payload
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        time.sleep(60.0)
    return value * 2


class TestUnifiedPoolErrors:
    def test_one_definition_everywhere(self):
        # satellite: scheduler and intra-pool used to carry divergent
        # tuples (BrokenProcessPool vs BrokenExecutor); both must now be
        # the single canonical errors.POOL_ERRORS object
        assert POOL_ERRORS is ERRORS_CANONICAL
        assert INTRA_POOL_ERRORS is ERRORS_CANONICAL

    def test_covers_both_executor_flavors(self):
        from concurrent.futures import BrokenExecutor
        from concurrent.futures.process import BrokenProcessPool

        assert issubclass(BrokenProcessPool, ERRORS_CANONICAL[-1])
        assert issubclass(BrokenExecutor, ERRORS_CANONICAL[-1])


class TestRetryDelay:
    def test_deterministic(self):
        assert retry_delay("k", 1, 0.05) == retry_delay("k", 1, 0.05)

    def test_exponential_in_attempt(self):
        d1, d2, d3 = (retry_delay("task-x", a, 0.05) for a in (1, 2, 3))
        assert d2 == pytest.approx(2 * d1) and d3 == pytest.approx(4 * d1)

    def test_key_spread_bounded(self):
        # the key-derived factor spreads tasks within [1, 2) * base
        delays = {retry_delay(f"t{i}", 1, 0.05) for i in range(50)}
        assert len(delays) > 1
        assert all(0.05 <= d < 0.10 for d in delays)


class TestRetries:
    def test_task_exception_retries_then_fails_via_on_fail(self):
        sched = DataflowScheduler(
            pool_size=1, executor_factory=_real_pool, retry_backoff_s=0.01
        )
        failures, results = [], []
        task = sched.add(
            ScheduledTask(
                kind="online",
                label="bad",
                pooled=True,
                worker_fn=_always_raises,
                payload=0,
                max_retries=1,
                on_done=lambda _t, out: results.append(out),
                on_fail=lambda _t, msg: failures.append(msg),
            )
        )
        try:
            sched.run()
        finally:
            sched.shutdown()
        assert results == []  # on_fail consumed the delivery
        assert len(failures) == 1 and "ValueError" in failures[0]
        assert task.done and task.result[0] == "err"
        assert task.attempts == 2  # initial + one retry
        assert sched.n_retries == 1
        assert not sched.pool_broken  # a bad task is not a bad pool

    def test_without_on_fail_the_err_tuple_reaches_on_done(self):
        sched = DataflowScheduler(
            pool_size=1, executor_factory=_real_pool, retry_backoff_s=0.01
        )
        results = []
        sched.add(
            ScheduledTask(
                kind="online",
                label="bad",
                pooled=True,
                worker_fn=_always_raises,
                payload=0,
                on_done=lambda _t, out: results.append(out),
            )
        )
        try:
            sched.run()
        finally:
            sched.shutdown()
        assert len(results) == 1
        assert results[0][0] == "err" and "ValueError" in results[0][1]


class TestTimeouts:
    def test_hung_task_times_out_and_retry_succeeds(self, tmp_path):
        sched = DataflowScheduler(
            pool_size=1, executor_factory=_real_pool, retry_backoff_s=0.01
        )
        results = []
        sched.add(
            ScheduledTask(
                kind="online",
                label="hang",
                pooled=True,
                worker_fn=_slow_first_attempt,
                payload=(str(tmp_path / "marker"), 21),
                timeout_s=0.5,
                max_retries=1,
                on_done=lambda _t, out: results.append(out),
            )
        )
        try:
            sched.run()
        finally:
            sched.shutdown()
        assert results == [42]
        assert sched.n_timeouts == 1
        assert sched.n_retries == 1
        # a running pooled task can only be cancelled by pool teardown;
        # that teardown must not poison the pool permanently
        assert sched.pool_respawns >= 1
        assert not sched.pool_broken

    def test_hung_task_with_no_retries_fails(self, tmp_path):
        sched = DataflowScheduler(
            pool_size=1, executor_factory=_real_pool, retry_backoff_s=0.01
        )
        failures = []
        sched.add(
            ScheduledTask(
                kind="online",
                label="hang-hard",
                pooled=True,
                worker_fn=_slow_first_attempt,
                payload=(str(tmp_path / "marker"), 1),
                timeout_s=0.4,
                max_retries=0,
                on_fail=lambda _t, msg: failures.append(msg),
            )
        )
        try:
            sched.run()
        finally:
            sched.shutdown()
        assert len(failures) == 1 and "timeout" in failures[0]
        assert sched.n_timeouts == 1 and sched.n_retries == 0


class TestPoolRespawn:
    def _run_with_chaos(self, tmp_path, **spec):
        sched = DataflowScheduler(pool_size=2, executor_factory=_real_pool)
        results = []
        chaos.arm(str(tmp_path), **spec)
        try:
            for i in range(6):
                sched.add(
                    ScheduledTask(
                        kind="online",
                        label=f"t{i}",
                        pooled=True,
                        worker_fn=_double,
                        payload=i,
                        on_done=lambda _t, out: results.append(out),
                    )
                )
            sched.run()
        finally:
            chaos.disarm()
            sched.shutdown()
        return sched, results

    def test_killed_worker_recovers_with_identical_results(self, tmp_path):
        sched, results = self._run_with_chaos(
            tmp_path, kill_worker_at_task=2
        )
        assert sorted(results) == [0, 2, 4, 6, 8, 10]
        assert sched.pool_respawns == 1
        assert sched.n_reenqueued >= 1  # the in-flight victims came back
        assert not sched.pool_broken  # one crash is within budget
        assert sched.inline_fallbacks == set()  # pool recovered, no inlining

    def test_injected_pool_error_recovers(self, tmp_path):
        sched, results = self._run_with_chaos(tmp_path, pool_error_at_task=2)
        assert sorted(results) == [0, 2, 4, 6, 8, 10]
        assert sched.pool_respawns == 1
        assert not sched.pool_broken

    def test_respawn_budget_exhaustion_degrades_inline(self):
        calls = {"n": 0}

        def factory(_n):
            calls["n"] += 1
            raise OSError("no pools ever")

        sched = DataflowScheduler(
            pool_size=2, executor_factory=factory, max_pool_respawns=1
        )
        results = []
        sched.add(
            ScheduledTask(
                kind="online",
                label="p",
                pooled=True,
                worker_fn=_double,
                payload=5,
                on_done=lambda _t, out: results.append(out),
            )
        )
        sched.run()
        assert results == [10]
        assert calls["n"] == 2  # initial attempt + the one budgeted respawn
        assert sched.pool_broken
        assert "online" in sched.inline_fallbacks


class TestAbort:
    def test_abort_cancels_everything_pending(self):
        sched = DataflowScheduler()
        ran = []

        def first():
            ran.append("first")
            sched.abort()

        sched.add(ScheduledTask(kind="offline", label="a", inline_fn=first))
        later = [
            sched.add(
                ScheduledTask(
                    kind="offline",
                    label=f"b{i}",
                    inline_fn=lambda i=i: ran.append(i),
                )
            )
            for i in range(3)
        ]
        sched.run()
        assert ran == ["first"]
        assert all(t.cancelled and not t.done for t in later)

    def test_scheduler_usable_after_abort(self):
        sched = DataflowScheduler()
        sched.add(
            ScheduledTask(
                kind="offline", label="x", inline_fn=lambda: sched.abort()
            )
        )
        sched.run()
        ran = []
        sched.add(
            ScheduledTask(
                kind="offline", label="y", inline_fn=lambda: ran.append(1)
            )
        )
        sched.run()
        assert ran == [1]


class TestJournalFormat:
    def _start(self, tmp_path, **kw):
        path = str(tmp_path / "j" / "c1.jsonl")
        defaults = dict(
            campaign_id="c1", fingerprint="fp", n_scenarios=3, fsync=False
        )
        defaults.update(kw)
        return path, CampaignJournal.start(path, **defaults)

    def test_round_trip(self, tmp_path):
        path, j = self._start(tmp_path)
        j.append_scenario(0, {"scenario": "s0", "status": "localized"})
        j.append_scenario(2, {"scenario": "s2", "status": "missed"})
        j.close()
        header, records = CampaignJournal.load(path)
        assert header["v"] == JOURNAL_VERSION and header["n"] == 3
        assert set(records) == {0, 2}
        assert records[0]["status"] == "localized"

    def test_torn_final_line_is_dropped(self, tmp_path):
        path, j = self._start(tmp_path)
        j.append_scenario(0, {"scenario": "s0"})
        j.append_scenario(1, {"scenario": "s1"})
        j.close()
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 7)  # tear the last record
        header, records = CampaignJournal.load(path)
        assert header is not None
        assert set(records) == {0}  # torn record recomputed, not trusted

    def test_mid_file_corruption_stops_replay(self, tmp_path):
        path, j = self._start(tmp_path)
        j.append_scenario(0, {"scenario": "s0"})
        j.append_scenario(1, {"scenario": "s1"})
        j.close()
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[1] = b"deadbeef " + lines[1].split(b" ", 1)[1]  # bad crc
        with open(path, "wb") as fh:
            fh.writelines(lines)
        _header, records = CampaignJournal.load(path)
        assert records == {}  # nothing after the corruption is trusted

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path, j = self._start(tmp_path, fingerprint="fp-a")
        j.close()
        with pytest.raises(ValueError, match="different scenarios"):
            CampaignJournal.resume(path, fingerprint="fp-b")

    def test_resume_appends_after_existing_records(self, tmp_path):
        path, j = self._start(tmp_path)
        j.append_scenario(0, {"scenario": "s0"})
        j.close()
        j2, records = CampaignJournal.resume(path, fingerprint="fp")
        assert set(records) == {0}
        j2.append_scenario(1, {"scenario": "s1"})
        j2.close()
        _header, records = CampaignJournal.load(path)
        assert set(records) == {0, 1}

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CampaignJournal.resume(
                str(tmp_path / "nope.jsonl"), fingerprint="fp"
            )
