"""Routing-level wire sharing between mutually exclusive connections.

The central physical mechanism of the paper: connections belonging to one
TCON tree may overlap on wires because at most one is active per parameter
assignment.  These tests pin the occupancy semantics of the PathFinder and
the end-to-end wiring advantage.
"""

from __future__ import annotations

import pytest

from repro.arch import ArchSpec, DeviceGrid, build_rr_graph
from repro.errors import UnroutableError
from repro.route.pathfinder import ConnectionRequest, PathFinder

TINY = ArchSpec(
    k=4, n_ble=2, n_cluster_inputs=6, channel_width=4, fc_in=1.0, fc_out=1.0,
    io_capacity=2,
)


@pytest.fixture(scope="module")
def rr():
    return build_rr_graph(DeviceGrid(TINY, 2))


class TestSharingSemantics:
    def test_same_key_shares_freely(self, rr):
        pf = PathFinder(rr)
        src_a = rr.pad_source[next(iter(rr.pad_source))]
        sink = rr.sink_of[(1, 1)]
        reqs = [
            ConnectionRequest(0, 7, src_a, (sink,)),
            ConnectionRequest(1, 7, src_a, (sink,)),
        ]
        trees = pf.route(reqs)
        # both routed; shared nodes count once in occupancy
        shared = set(trees[0].nodes) & set(trees[1].nodes)
        for n in shared:
            assert pf.occ[n] <= rr.capacity[n]

    def test_different_keys_compete(self, rr):
        pf = PathFinder(rr)
        keys_sources = list(rr.pad_source.items())[:2]
        sink1 = rr.sink_of[(1, 1)]
        sink2 = rr.sink_of[(2, 2)]
        reqs = [
            ConnectionRequest(0, 1, keys_sources[0][1], (sink1,)),
            ConnectionRequest(1, 2, keys_sources[1][1], (sink2,)),
        ]
        trees = pf.route(reqs)
        # no wire is over capacity even though keys differ
        for n in set(trees[0].nodes) & set(trees[1].nodes):
            if rr.is_wire(n):
                assert pf.occ[n] <= rr.capacity[n]

    def test_iteration_counter(self, rr):
        pf = PathFinder(rr)
        src = rr.pad_source[next(iter(rr.pad_source))]
        pf.route([ConnectionRequest(0, 1, src, (rr.sink_of[(1, 1)],))])
        assert pf.iterations_run >= 1

    def test_empty_request_list(self, rr):
        assert PathFinder(rr).route([]) == {}

    def test_unreachable_sink_raises(self, rr):
        pf = PathFinder(rr, max_iterations=2)
        src = rr.pad_source[next(iter(rr.pad_source))]
        # a SOURCE node can never be a sink target
        other_src = rr.source_of[(1, 1, 0)]
        with pytest.raises(UnroutableError):
            pf.route([ConnectionRequest(0, 1, src, (other_src,))])


class TestWiringAdvantage:
    def test_proposed_uses_fewer_wires_than_conventional(self, stereov_net):
        """The §V-C.1 effect at test scale: shared debug wiring wins."""
        from repro.baselines import run_conventional_flow
        from repro.core.flow import run_generic_stage
        from repro.physical import physical_from_mapping

        offline = run_generic_stage(stereov_net.copy())
        prop = physical_from_mapping(
            offline.mapping, offline.instrumented, seed=9, effort=1.0
        )
        conv_map = run_conventional_flow(stereov_net, "abc")
        conv = physical_from_mapping(conv_map.final, None, seed=9, effort=1.0)
        assert prop.wires_used < conv.wires_used
        assert prop.n_clbs_used < conv.n_clbs_used
