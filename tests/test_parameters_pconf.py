"""Parameter spaces, assignments and the parameterized bitstream."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.boolfunc import bf_conj, bf_const, bf_not, bf_var
from repro.core.parameters import ParameterSpace
from repro.core.pconf import ParameterizedBitstream
from repro.errors import ParameterError, SpecializationError


class TestParameterSpace:
    def test_ordering(self):
        sp = ParameterSpace(["a", "b", "c"])
        assert sp.names == ["a", "b", "c"]
        assert sp.index_of("b") == 1

    def test_duplicate(self):
        with pytest.raises(ParameterError):
            ParameterSpace(["a", "a"])

    def test_unknown(self):
        with pytest.raises(ParameterError):
            ParameterSpace(["a"]).index_of("b")

    def test_assignment_defaults(self):
        sp = ParameterSpace(["a", "b"])
        a = sp.assignment({"b": 1})
        assert a["a"] == 0 and a["b"] == 1

    def test_assignment_bad_value(self):
        sp = ParameterSpace(["a"])
        with pytest.raises(ParameterError):
            sp.assignment({"a": 2})

    def test_with_values_copy(self):
        sp = ParameterSpace(["a"])
        base = sp.zeros()
        mod = base.with_values({"a": 1})
        assert base["a"] == 0 and mod["a"] == 1

    def test_diff(self):
        sp = ParameterSpace(["a", "b", "c"])
        x = sp.assignment({"a": 1})
        y = sp.assignment({"a": 1, "c": 1})
        assert x.diff(y) == ["c"]

    def test_as_dict(self):
        sp = ParameterSpace(["a", "b"])
        assert sp.assignment({"a": 1}).as_dict() == {"a": 1, "b": 0}


class TestPConf:
    def make(self) -> tuple[ParameterSpace, ParameterizedBitstream]:
        sp = ParameterSpace(["p", "q"])
        pb = ParameterizedBitstream(sp, 16)
        return sp, pb

    def test_constant_bits(self):
        sp, pb = self.make()
        pb.set_constant(3, 1)
        bits, _ = pb.specialize(sp.zeros())
        assert bits[3] == 1 and bits[0] == 0

    def test_tunable_bit(self):
        sp, pb = self.make()
        pb.set_tunable(5, bf_var(0) & bf_not(bf_var(1)))
        bits, _ = pb.specialize(sp.assignment({"p": 1}))
        assert bits[5] == 1
        bits, _ = pb.specialize(sp.assignment({"p": 1, "q": 1}))
        assert bits[5] == 0

    def test_const_expr_becomes_static(self):
        sp, pb = self.make()
        pb.set_tunable(2, bf_const(1))
        assert pb.n_tunable == 0
        assert pb.baseline[2] == 1

    def test_out_of_range(self):
        sp, pb = self.make()
        with pytest.raises(SpecializationError):
            pb.set_constant(99, 1)

    def test_constant_over_tunable_rejected(self):
        sp, pb = self.make()
        pb.set_tunable(4, bf_var(0))
        with pytest.raises(SpecializationError):
            pb.set_constant(4, 1)

    def test_unknown_param_index_rejected(self):
        sp, pb = self.make()
        with pytest.raises(SpecializationError):
            pb.set_tunable(1, bf_var(9))

    def test_wrong_space(self):
        sp, pb = self.make()
        other = ParameterSpace(["p", "q"])
        with pytest.raises(SpecializationError):
            pb.specialize(other.zeros())

    def test_stats_counting(self):
        sp, pb = self.make()
        shared = bf_var(0)
        pb.set_tunable(0, shared)
        pb.set_tunable(1, shared)
        pb.set_tunable(2, bf_not(bf_var(1)))
        bits, stats = pb.specialize(sp.assignment({"p": 1}))
        assert stats.n_tunable_bits == 3
        assert pb.n_distinct_exprs == 2
        assert bits[0] == bits[1] == 1 and bits[2] == 1

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 63),
                st.lists(st.tuples(st.integers(0, 7), st.integers(0, 1)), max_size=3),
            ),
            max_size=20,
        ),
        st.integers(0, 255),
    )
    def test_specialize_matches_direct_eval(self, entries, assignment_bits):
        sp = ParameterSpace([f"p{i}" for i in range(8)])
        pb = ParameterizedBitstream(sp, 64)
        exprs = {}
        for idx, lits in entries:
            e = bf_conj(lits)
            pb.set_tunable(idx, e)
            exprs[idx] = e
        vec = np.array(
            [(assignment_bits >> i) & 1 for i in range(8)], dtype=np.uint8
        )
        assign = sp.assignment(
            {f"p{i}": int(vec[i]) for i in range(8)}
        )
        bits, _ = pb.specialize(assign)
        for idx, e in exprs.items():
            assert bits[idx] == e.evaluate(vec)

    def test_specialize_packed(self):
        sp, pb = self.make()
        pb.set_constant(0, 1)
        words, _ = pb.specialize_packed(sp.zeros())
        assert int(words[0]) & 1 == 1
