"""The campaign layer: cache semantics, determinism, reports, CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import (
    CampaignConfig,
    OfflineCache,
    run_campaign,
    run_scenario,
)
from repro.core.debug import DebugSession
from repro.core.flow import DebugFlowConfig, offline_cache_key, run_generic_stage
from repro.errors import DebugFlowError
from repro.workloads import (
    campaign_spec,
    generate_circuit,
    mutation_scenarios,
    stuck_at_scenarios,
)

SPEC = campaign_spec("camp-test", n_gates=100, depth=7, n_pis=16, n_pos=8)
HORIZON = 48


@pytest.fixture(scope="module")
def scenarios():
    return stuck_at_scenarios(SPEC, 3, horizon=HORIZON)


@pytest.fixture(scope="module")
def offline():
    return run_generic_stage(generate_circuit(SPEC))


class TestCacheKey:
    def test_content_keyed(self):
        a = generate_circuit(SPEC)
        b = generate_circuit(SPEC)
        assert offline_cache_key(a) == offline_cache_key(b)

    def test_config_and_extra_discriminate(self):
        net = generate_circuit(SPEC)
        base = offline_cache_key(net)
        assert base != offline_cache_key(net, DebugFlowConfig(k=5))
        assert base != offline_cache_key(net, extra=("physical",))

    def test_distinct_designs_distinct_keys(self):
        net = generate_circuit(SPEC)
        other = generate_circuit(campaign_spec("camp-test2", n_gates=100))
        assert offline_cache_key(net) != offline_cache_key(other)


class TestOfflineCache:
    def test_hit_returns_same_artifact(self):
        cache = OfflineCache()
        net = generate_circuit(SPEC)
        first, hit1 = cache.get_or_run(net)
        second, hit2 = cache.get_or_run(generate_circuit(SPEC))
        assert (hit1, hit2) == (False, True)
        assert second is first
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert first.cache_key == offline_cache_key(net)

    def test_config_miss(self):
        cache = OfflineCache()
        net = generate_circuit(SPEC)
        cache.get_or_run(net)
        _, hit = cache.get_or_run(net, DebugFlowConfig(k=4))
        assert not hit
        assert cache.stats.misses == 2

    def test_disk_roundtrip(self, tmp_path):
        d = str(tmp_path / "cache")
        warm = OfflineCache(cache_dir=d)
        warm.get_or_run(generate_circuit(SPEC))
        # a fresh cache (new process, same directory) hits from disk
        cold = OfflineCache(cache_dir=d)
        stage, hit = cold.get_or_run(generate_circuit(SPEC))
        assert hit and cold.stats.disk_hits == 1
        assert stage.summary()  # artifact survived pickling intact

    def test_legacy_pr1_disk_layout_migrates(self, tmp_path):
        import os
        import pickle

        d = str(tmp_path / "cache")
        os.makedirs(d)
        builder = OfflineCache()
        net = generate_circuit(SPEC)
        stage, _ = builder.get_or_run(net)
        key = stage.cache_key
        # PR 1 persisted whole artifacts at <cache_dir>/<key>.pkl
        with open(os.path.join(d, f"{key}.pkl"), "wb") as fh:
            pickle.dump(stage, fh)
        fresh = OfflineCache(cache_dir=d)
        got, hit = fresh.get_or_run(generate_circuit(SPEC))
        assert hit and got.summary()
        assert fresh.stats.disk_hits == 1 and fresh.stats.misses == 0
        # a migration is a read, not a build
        assert fresh.stats.stores == 0
        # the entry moved to the stage-granular location (old file removed)
        assert os.path.exists(fresh._path(key))
        assert not os.path.exists(os.path.join(d, f"{key}.pkl"))

    def test_corrupt_disk_entry_is_miss(self, tmp_path):
        d = str(tmp_path / "cache")
        warm = OfflineCache(cache_dir=d)
        stage, _ = warm.get_or_run(generate_circuit(SPEC))
        path = warm._path(stage.cache_key)
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
        cold = OfflineCache(cache_dir=d)
        _, hit = cold.get_or_run(generate_circuit(SPEC))
        assert not hit and cold.stats.misses == 1


class TestScenarioGeneration:
    def test_deterministic(self, scenarios):
        again = stuck_at_scenarios(SPEC, 3, horizon=HORIZON)
        assert again == scenarios

    def test_mutation_deterministic(self):
        a = mutation_scenarios(SPEC, 2, horizon=HORIZON)
        b = mutation_scenarios(SPEC, 2, horizon=HORIZON)
        assert a == b
        # the recorded seed reproduces the identical bug
        bug1 = a[0].reproduce_bug(a[0].golden_network())
        bug2 = a[0].reproduce_bug(a[0].golden_network())
        assert (bug1.node_name, bug1.kind) == (bug2.node_name, bug2.kind)

    def test_stuck_at_shares_design_content(self, scenarios):
        keys = {offline_cache_key(sc.debug_network()) for sc in scenarios}
        assert len(keys) == 1

    def test_mutations_have_distinct_content(self):
        muts = mutation_scenarios(SPEC, 2, horizon=HORIZON)
        keys = {offline_cache_key(sc.debug_network()) for sc in muts}
        assert len(keys) == 2


class TestSessionForce:
    def test_force_changes_waveform(self, offline, scenarios):
        sig = scenarios[0].fault_signal
        value = scenarios[0].fault_value
        stim = scenarios[0].stimulus()

        clean = DebugSession(offline)
        clean.observe([sig])
        clean.run(HORIZON, stimulus=lambda c: stim[c])
        baseline = clean.waveforms()[sig]

        forced = DebugSession(offline)
        forced.force(sig, value)
        forced.observe([sig])
        forced.run(HORIZON, stimulus=lambda c: stim[c])
        wave = forced.waveforms()[sig]
        assert np.all(wave == value)
        assert not np.array_equal(wave, baseline)

        forced.clear_forces()
        forced.reset()
        forced.run(HORIZON, stimulus=lambda c: stim[c])
        assert np.array_equal(forced.waveforms()[sig], baseline)

    def test_force_unknown_signal_rejected(self, offline):
        session = DebugSession(offline)
        with pytest.raises(DebugFlowError):
            session.force("no_such_signal", 1)
        with pytest.raises(DebugFlowError):
            session.force(session.observable_signals[0], 2)
        # select parameters exist in the mapped net but are not designs
        # signals — forcing one would corrupt observation routing
        param = next(iter(offline.instrumented.param_space.names))
        with pytest.raises(DebugFlowError):
            session.force(param, 1)

    def test_output_trace_shape(self, offline):
        session = DebugSession(offline)
        trace = session.output_trace(4, stimulus=lambda c: {})
        assert len(trace) == 4
        assert set(trace[0]) == set(session.user_po_names)
        assert all(bit in (0, 1) for row in trace for bit in row.values())


class TestRunScenario:
    def test_stuck_at_localizes(self, offline, scenarios):
        result = run_scenario(scenarios[0], offline)
        assert result.status == "localized"
        assert result.truth == scenarios[0].fault_signal
        assert result.turns >= 1
        assert result.fail_cycle >= 0 and result.failing_po
        assert result.online_s > 0 and result.detect_s > 0

    def test_mutation_localizes(self, scenarios):
        sc = mutation_scenarios(SPEC, 1, horizon=HORIZON)[0]
        offline = run_generic_stage(sc.debug_network())
        result = run_scenario(sc, offline)
        assert result.status == "localized"
        assert result.truth  # ground-truth gate recorded

    def test_error_captured_not_raised(self, offline, scenarios):
        import dataclasses

        broken = dataclasses.replace(scenarios[0], fault_signal="nope")
        result = run_scenario(broken, offline)
        assert result.status == "error"
        assert "nope" in result.error


class TestCampaign:
    def test_cache_amortizes_offline(self, scenarios):
        cache = OfflineCache()
        report = run_campaign(scenarios, cache=cache)
        hits = [r.offline_cache_hit for r in report.results]
        assert hits == [False, True, True]
        assert cache.stats.as_dict()["misses"] == 1
        assert report.counts().get("localized") == len(scenarios)

    def test_serial_parallel_deterministic(self, scenarios):
        serial = run_campaign(
            scenarios, config=CampaignConfig(workers=1), cache=OfflineCache()
        )
        parallel = run_campaign(
            scenarios, config=CampaignConfig(workers=2), cache=OfflineCache()
        )
        assert serial.outcomes() == parallel.outcomes()
        # repeated runs are also reproducible
        again = run_campaign(
            scenarios, config=CampaignConfig(workers=1), cache=OfflineCache()
        )
        assert serial.outcomes() == again.outcomes()

    def test_cold_run_pays_per_scenario(self, scenarios):
        report = run_campaign(scenarios, cache=None)
        assert report.cache_stats is None
        assert all(not r.offline_cache_hit for r in report.results)
        assert all(r.offline_s > 0 for r in report.results)

    def test_report_renders_and_saves(self, scenarios, tmp_path):
        report = run_campaign(scenarios, cache=OfflineCache())
        text = report.render()
        assert "DEBUG-CAMPAIGN REPORT" in text
        assert "localization rate" in text
        for r in report.results:
            assert r.scenario in text
        path = report.save("campaign_test", str(tmp_path))
        with open(path, encoding="utf-8") as fh:
            assert fh.read().strip() == text.strip()
        assert 0.0 <= report.localization_rate <= 1.0


class TestReportingAggregation:
    def test_aggregate_campaign(self, scenarios):
        from repro.analysis.reporting import aggregate_campaign

        report = run_campaign(scenarios, cache=OfflineCache())
        agg = aggregate_campaign([r.as_record() for r in report.results])
        assert agg["n_scenarios"] == len(scenarios)
        assert agg["counts"]["localized"] == len(scenarios)
        assert agg["cache_hits"] == len(scenarios) - 1
        assert agg["localization_rate"] == 1.0

    def test_experiments_accept_offline_fn(self):
        from repro.analysis.experiments import _CACHE, run_benchmark_columns
        from repro.workloads import get_spec

        cache = OfflineCache()
        spec = get_spec("stereov.")
        _CACHE.pop((spec.name, 2016), None)
        try:
            cols = run_benchmark_columns(spec, offline_fn=cache.as_offline_fn())
            assert cache.stats.stores == 1
            assert cols.offline.cache_key is not None
        finally:
            _CACHE.pop((spec.name, 2016), None)

    def test_warm_offline_fn_offer_memoized(self):
        # a warm in-process hit offers the artifact to an explicit
        # offline_fn once — not once per Table I/II/Fig. 7 column replay
        from repro.analysis.experiments import _CACHE, run_benchmark_columns
        from repro.core.flow import run_generic_stage
        from repro.workloads import get_spec

        spec = get_spec("stereov.")
        _CACHE.pop((spec.name, 2016), None)
        calls = []

        def offline_fn(net, config):
            calls.append(net.name)
            return run_generic_stage(net, config)

        try:
            run_benchmark_columns(spec, offline_fn=offline_fn)
            assert len(calls) == 1  # the build itself
            for _ in range(3):  # warm replays: no further offers
                run_benchmark_columns(spec, offline_fn=offline_fn)
            assert len(calls) == 1
            # a *different* offline_fn still gets its one offer
            other_calls = []

            def other_fn(net, config):
                other_calls.append(net.name)
                return run_generic_stage(net, config)

            run_benchmark_columns(spec, offline_fn=other_fn)
            assert len(other_calls) == 1
        finally:
            _CACHE.pop((spec.name, 2016), None)


class TestCli:
    def test_cli_runs_small_campaign(self, capsys):
        from repro.campaign.cli import main

        rc = main(
            [
                "--designs",
                "stereov.",
                "--per-design",
                "1",
                "--horizon",
                "48",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "DEBUG-CAMPAIGN REPORT" in out
