"""Worker-count determinism of the intra-design parallel physical pipeline.

PR 8's two intra-parallel kernels make different determinism promises:

* the region-parallel placer (``place/parallel.py``) is a *different*
  algorithm from the serial annealer — cache-keyed via ``place_regions``
  — but byte-identical to itself at any worker count;
* the round-parallel router (``route/parallel.py``) is byte-identical to
  the serial ``PathFinder`` on the same placement at any worker count,
  which is why it needs no cache key at all.

This module pins both, plus the commit-order invariance of the placer's
replay protocol, the campaign-level outcome identity across
``intra_design_workers`` ∈ {1, 2, 4}, and the numpy import guards.
The strict equal-or-better quality gates on the benchmark design live in
``benchmarks/bench_offline.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager

import pytest

from repro.arch import ArchSpec
from repro.arch.routing_graph import build_rr_graph
from repro.core.muxnet import build_trace_network
from repro.mapping import TconMap
from repro.pack import build_atoms, pack_design
from repro.place import place_design
from repro.route import route_design
from repro.util.intra import IntraPool
from repro.workloads import campaign_spec, generate_circuit

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

requires_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="region-parallel placement requires numpy"
)

ARCH = ArchSpec(
    k=6, n_ble=4, n_cluster_inputs=14, channel_width=32, io_capacity=4
)


@pytest.fixture(scope="module")
def packed():
    spec = campaign_spec(
        "intra-small", n_gates=140, depth=8, n_pis=16, n_pos=8
    )
    net = generate_circuit(spec)
    instr = build_trace_network(net, n_buffer_inputs=2)
    mapping = TconMap(params=instr.param_ids, taps=set(instr.taps)).map(
        instr.network
    )
    return pack_design(build_atoms(mapping, instr), ARCH)


@contextmanager
def _pool(workers: int):
    """An IntraPool backed by its own executor (in-process at <= 1)."""
    if workers <= 1:
        yield IntraPool(workers)
        return
    ex = ProcessPoolExecutor(max_workers=workers)
    try:
        yield IntraPool(workers, acquire=lambda: ex)
    finally:
        ex.shutdown()


def _wire_lists(routing):
    return [sorted(c.tree.nodes) for c in routing.connections]


# -- placement -----------------------------------------------------------------


@requires_numpy
@pytest.mark.parametrize("seed", [7, 2016])
def test_region_placement_determinism_across_workers(packed, seed):
    """Identical placements (locations and HPWL) at workers 1, 2 and 4."""
    from repro.place.parallel import place_design_regions

    exports = []
    for w in (1, 2, 4):
        with _pool(w) as pool:
            p = place_design_regions(packed, seed=seed, regions=8, intra=pool)
        exports.append((p.loc_of, p.cost))
    assert exports[0] == exports[1] == exports[2]


@requires_numpy
def test_region_placement_seed_sensitivity_and_quality(packed):
    """Distinct seeds move the anneal; quality stays near the serial bar.

    The strict equal-or-better HPWL gate is asserted on the benchmark
    design in ``bench_offline.py``; this small design only bounds the
    gap so a quality regression in the region kernel still fails fast.
    """
    from repro.place.parallel import place_design_regions

    by_seed = {}
    for seed in (7, 2016):
        with _pool(1) as pool:
            p = place_design_regions(packed, seed=seed, regions=8, intra=pool)
        serial = place_design(packed, seed=seed)
        assert p.cost <= 1.05 * serial.cost
        by_seed[seed] = p.loc_of
    assert by_seed[7] != by_seed[2016]


@requires_numpy
def test_commit_round_is_order_invariant(packed):
    """Survivor replay is a pure function of (state, results) — shuffling
    the arrival order of region results changes nothing."""
    from repro.place import parallel as pp
    from repro.place.tplace import _PlacerState

    def fresh_state():
        return _PlacerState(packed, None, 2016, 0.7)

    st = fresh_state()
    rg = pp._RegionGrid(st.site_x, st.site_y, 8)
    ox, oy = rg.offsets(0, 0)
    clb_by_r, io_by_r = rg.site_partition(st.n_clb_sites, ox, oy)
    movable_by_r = [[] for _ in range(rg.n_regions)]
    for bi in st.movable:
        movable_by_r[rg.region_of(st.bx[bi], st.by[bi], ox, oy)].append(bi)
    static = (
        st.members, st.nets_of_block, st.big, st.site_x, st.site_y,
        st.is_clb, st.n_nets,
    )
    inv_temp = -1.0 / 5.0
    parts = [
        (r, 1000 + r, movable_by_r[r], clb_by_r[r], io_by_r[r], 40, inv_temp)
        for r in range(rg.n_regions)
        if movable_by_r[r]
    ]
    snap_state = {ni: s for ni, s in enumerate(st.state) if s is not None}
    snap = (st.site_of, st.net_cost, snap_state)
    results = pp.eval_regions(static, (snap, parts))
    assert sum(len(s) for _r, _e, s in results) > 0

    st_a, st_b = fresh_state(), fresh_state()
    n_a = pp._commit_round(st_a, list(results), inv_temp)
    n_b = pp._commit_round(st_b, list(reversed(results)), inv_temp)
    assert n_a == n_b
    assert st_a.site_of == st_b.site_of
    assert st_a.net_cost == st_b.net_cost
    assert st_a.total == st_b.total


# -- routing -------------------------------------------------------------------


@pytest.mark.parametrize("seed", [7, 2016])
def test_round_router_byte_identical_to_serial(packed, seed):
    """Round-parallel routed trees equal the serial PathFinder's exactly,
    at every worker count — the property that keeps routing key-free."""
    placement = place_design(packed, seed=seed)
    rr = build_rr_graph(placement.grid)
    serial = route_design(placement, rr)
    reference = _wire_lists(serial)
    for w in (1, 2, 4):
        with _pool(w) as pool:
            r = route_design(placement, rr, rounds=True, intra=pool)
        assert _wire_lists(r) == reference
        assert r.total_wires_used() == serial.total_wires_used()
        assert r.iterations == serial.iterations


def test_round_router_speculation_accounting(packed):
    """Conflicting waves replay serially: every search is accounted as
    either a speculative hit or an exact serial replay, and the congested
    early iterations force both paths to run."""
    from repro.route.parallel import RoundPathFinder

    placement = place_design(packed, seed=7)
    rr = build_rr_graph(placement.grid)
    serial = route_design(placement, rr)
    requests = [c.request for c in serial.connections]
    pf = RoundPathFinder(rr)
    pf.route(requests)
    assert pf.replayed_routes > 0, "expected read-set conflicts to replay"
    assert pf.speculative_hits > 0, "expected speculative commits"
    # every search ran exactly once per (request, iteration) pair
    assert (
        pf.speculative_hits + pf.replayed_routes
        == len(requests) * pf.iterations_run
    )


# -- campaign ------------------------------------------------------------------


@requires_numpy
def test_campaign_outcomes_identical_across_intra_workers():
    import json

    from repro.campaign.orchestrator import CampaignConfig, run_campaign
    from repro.workloads.scenarios import stuck_at_scenarios

    spec = campaign_spec("intra-camp", n_gates=60, depth=6, n_pis=10, n_pos=6)
    scenarios = stuck_at_scenarios(spec, 2, seed=7, horizon=32)
    outcomes = {}
    for w in (1, 2, 4):
        report = run_campaign(
            scenarios,
            config=CampaignConfig(
                with_physical=True, intra_design_workers=w, max_turns=8
            ),
            cache=None,
        )
        assert report.intra_design_workers == w
        outcomes[w] = json.dumps(report.outcomes(), default=str)
    assert outcomes[1] == outcomes[2] == outcomes[4]


def test_generic_campaign_outcomes_identical_across_intra_workers():
    """Without the physical back-end, ``intra_design_workers`` now drives
    level-wave mapping in the generic prefix (PR 10) — outcomes must
    match the 0-worker serial campaign exactly, and the serial and intra
    configurations must share cache keys (no group-key discriminator)."""
    import json

    from repro.campaign.orchestrator import CampaignConfig, run_campaign
    from repro.workloads.scenarios import stuck_at_scenarios

    spec = campaign_spec("intra-gen", n_gates=60, depth=6, n_pis=10, n_pos=6)
    scenarios = stuck_at_scenarios(spec, 2, seed=7, horizon=32)
    outcomes = {}
    for w in (0, 2):
        report = run_campaign(
            scenarios,
            config=CampaignConfig(intra_design_workers=w, max_turns=8),
            cache=None,
        )
        assert report.intra_design_workers == w
        outcomes[w] = json.dumps(report.outcomes(), default=str)
    assert outcomes[0] == outcomes[2]


# -- import guards -------------------------------------------------------------


def test_region_kernel_numpy_guard(monkeypatch):
    """With numpy masked out the region kernel fails with a clear error
    instead of an AttributeError deep inside the move loop."""
    from repro.place import parallel as pp

    monkeypatch.setattr(pp, "np", None)
    with pytest.raises(RuntimeError, match="numpy"):
        pp._eval_one_region((None,) * 7, None, (0, 0, [], [], [], 0, 0.0))


def test_serial_place_import_stays_numpy_lazy():
    """``repro.place`` must not drag in the numpy-only parallel module —
    the serial annealer has to stay importable on numpy-free hosts."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    code = (
        "import sys\n"
        "import repro.arch  # anchor import (package init order)\n"
        "import repro.place\n"
        "assert 'repro.place.parallel' not in sys.modules\n"
        "print('lazy')\n"
    )
    env = dict(os.environ, PYTHONPATH=os.path.join(root, "src"))
    out = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert out.returncode == 0, out.stderr
    assert "lazy" in out.stdout
