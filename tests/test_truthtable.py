"""Unit + property tests for truth tables."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.netlist.truthtable import TruthTable, MAX_VARS


def tt_strategy(max_vars: int = 4):
    return st.integers(1, max_vars).flatmap(
        lambda n: st.builds(
            TruthTable, st.just(n), st.integers(0, (1 << (1 << n)) - 1)
        )
    )


class TestConstruction:
    def test_const(self):
        assert TruthTable.const(0, 2).bits == 0
        assert TruthTable.const(1, 2).bits == 0b1111

    def test_var(self):
        assert TruthTable.var(0, 2).bits == 0b1010
        assert TruthTable.var(1, 2).bits == 0b1100

    def test_var_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.var(2, 2)

    def test_from_outputs(self):
        t = TruthTable.from_outputs([0, 1, 1, 0])
        assert t == (TruthTable.var(0, 2) ^ TruthTable.var(1, 2))

    def test_from_outputs_bad_length(self):
        with pytest.raises(ValueError):
            TruthTable.from_outputs([0, 1, 1])

    def test_max_vars_guard(self):
        with pytest.raises(ValueError):
            TruthTable(MAX_VARS + 1, 0)

    def test_bits_masked_to_width(self):
        t = TruthTable(1, 0b111)  # only 2 bits are meaningful
        assert t.bits == 0b11


class TestAlgebra:
    @given(tt_strategy(), st.data())
    def test_de_morgan(self, a, data):
        b = data.draw(tt_strategy(a.n_vars).filter(lambda t: t.n_vars == a.n_vars))
        assert ~(a & b) == (~a | ~b)

    @given(tt_strategy())
    def test_double_negation(self, a):
        assert ~~a == a

    @given(tt_strategy())
    def test_xor_self_is_zero(self, a):
        assert (a ^ a).const_value() == 0

    def test_incompatible_vars(self):
        with pytest.raises(ValueError):
            TruthTable.var(0, 2) & TruthTable.var(0, 3)

    def test_mux_identity(self):
        s = TruthTable.var(2, 3)
        a = TruthTable.var(0, 3)
        b = TruthTable.var(1, 3)
        m = TruthTable.mux(s, a, b)
        assert m.cofactor(2, 0) == a.cofactor(2, 0)
        assert m.cofactor(2, 1) == b.cofactor(2, 1)


class TestEval:
    def test_eval_point(self):
        t = TruthTable.var(0, 2) & TruthTable.var(1, 2)
        assert t.eval_point([1, 1]) == 1
        assert t.eval_point([1, 0]) == 0

    def test_eval_point_wrong_arity(self):
        with pytest.raises(ValueError):
            TruthTable.var(0, 2).eval_point([1])

    @given(tt_strategy())
    def test_eval_index_matches_outputs(self, t):
        outs = t.outputs()
        for i, o in enumerate(outs):
            assert t.eval_index(i) == o


class TestCofactorSupport:
    @given(tt_strategy(), st.data())
    def test_shannon_expansion(self, t, data):
        var = data.draw(st.integers(0, t.n_vars - 1))
        v = TruthTable.var(var, t.n_vars)
        rebuilt = (~v & t.cofactor(var, 0)) | (v & t.cofactor(var, 1))
        assert rebuilt == t

    @given(tt_strategy())
    def test_cofactor_removes_dependence(self, t):
        for var in range(t.n_vars):
            assert not t.cofactor(var, 0).depends_on(var)

    @given(tt_strategy())
    def test_support_subset(self, t):
        sup = t.support()
        assert all(0 <= v < t.n_vars for v in sup)
        for v in range(t.n_vars):
            assert (v in sup) == t.depends_on(v)

    @given(tt_strategy())
    def test_shrink_preserves_function(self, t):
        small, kept = t.shrink_to_support()
        assert small.n_vars == len(kept)
        # evaluate both on every original input assignment
        for idx in range(1 << t.n_vars):
            small_idx = 0
            for j, orig in enumerate(kept):
                if (idx >> orig) & 1:
                    small_idx |= 1 << j
            assert t.eval_index(idx) == small.eval_index(small_idx)

    @given(tt_strategy(3))
    def test_extend_keeps_function(self, t):
        big = t.extend(t.n_vars + 2)
        for idx in range(1 << t.n_vars):
            assert big.eval_index(idx) == t.eval_index(idx)
        assert set(big.support()) == set(t.support())


class TestPermuteCompose:
    def test_permute_swap(self):
        t = TruthTable.var(0, 2) & ~TruthTable.var(1, 2)
        swapped = t.permute([1, 0])
        assert swapped == (TruthTable.var(1, 2) & ~TruthTable.var(0, 2))

    def test_permute_injective_required(self):
        with pytest.raises(ValueError):
            TruthTable.var(0, 2).permute([0, 0])

    @given(tt_strategy(3))
    def test_permute_identity(self, t):
        assert t.permute(list(range(t.n_vars))) == t

    def test_compose_basic(self):
        f = TruthTable.var(0, 2) | TruthTable.var(1, 2)
        x = TruthTable.var(1, 3) & TruthTable.var(2, 3)
        y = TruthTable.var(0, 3)
        assert f.compose([x, y]) == (x | y)

    def test_compose_const_needs_arity(self):
        c = TruthTable.const(1, 0)
        with pytest.raises(ValueError):
            c.compose([])
        assert c.compose([], n_vars=3) == TruthTable.const(1, 3)

    def test_compose_arity_mismatch(self):
        with pytest.raises(ValueError):
            TruthTable.var(0, 2).compose([TruthTable.var(0, 1)])


class TestRecognizers:
    def test_as_mux_positive(self):
        m = TruthTable.mux(
            TruthTable.var(2, 3), TruthTable.var(0, 3), TruthTable.var(1, 3)
        )
        assert m.as_mux() == (2, 0, 1)

    def test_as_mux_negative(self):
        maj = (
            (TruthTable.var(0, 3) & TruthTable.var(1, 3))
            | (TruthTable.var(1, 3) & TruthTable.var(2, 3))
            | (TruthTable.var(0, 3) & TruthTable.var(2, 3))
        )
        assert maj.as_mux() is None

    def test_buffer_inverter(self):
        buf = TruthTable.var(1, 3)
        assert buf.is_buffer_of() == 1
        assert buf.is_inverter_of() is None
        inv = ~TruthTable.var(0, 2)
        assert inv.is_inverter_of() == 0
        assert inv.is_buffer_of() is None

    def test_const_not_buffer(self):
        assert TruthTable.const(1, 2).is_buffer_of() is None
