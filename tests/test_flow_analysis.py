"""Flow orchestration, cost models, baselines, analysis drivers."""

from __future__ import annotations

import os

import pytest

from repro.analysis import ascii_bar_chart, run_table1, run_table2, save_result
from repro.analysis.experiments import run_benchmark_columns
from repro.baselines import RecompileModel, run_conventional_flow
from repro.baselines.conventional import user_sink_names
from repro.core.costmodel import Virtex5Model
from repro.core.flow import DebugFlowConfig, run_generic_stage
from repro.core.virtual import build_virtual_pconf
from repro.errors import DebugFlowError
from repro.workloads import get_spec


class TestCostModel:
    def test_full_reconfig_is_176ms(self):
        assert Virtex5Model().full_reconfig_s() == pytest.approx(0.176, rel=0.02)

    def test_break_even_5000(self):
        m = Virtex5Model()
        assert m.break_even_turns(50e-6) == 5000

    def test_partial_scales_with_frames(self):
        m = Virtex5Model()
        assert m.partial_reconfig_s(10) == pytest.approx(
            10 * m.partial_reconfig_s(1)
        )

    def test_report_rows(self):
        rep = Virtex5Model().report(
            n_expr_nodes=10_000, n_tunable_bits=20_000, n_frames_touched=4
        )
        keys = [k for k, _v in rep.rows()]
        assert "full reconfiguration" in keys
        assert rep.speedup_vs_full > 100

    def test_evaluation_within_50us_for_paper_sizes(self):
        m = Virtex5Model()
        assert m.evaluation_s(25_000, 20_000) < 50e-6


class TestRecompileModel:
    def test_monotone(self):
        m = RecompileModel()
        assert m.compile_time_s(1000) < m.compile_time_s(10_000)

    def test_hour_scale_at_25k(self):
        t = RecompileModel().compile_time_s(25_000)
        assert 1800 < t < 7200

    def test_scaled_to_measurement(self):
        m = RecompileModel().scaled_to_measurement(5000, measured_s=100.0)
        assert m.compile_time_s(5000) == pytest.approx(100.0, rel=0.01)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RecompileModel().compile_time_s(-1)


class TestOfflineStage:
    def test_summary_and_annotation(self, stereov_offline):
        s = stereov_offline
        assert "LUTs" in s.summary()
        assert len(s.annotation.param_names) == len(s.instrumented.param_space)
        assert s.timers.total() > 0

    def test_virtual_pconf_dimensions(self, stereov_offline):
        vp = build_virtual_pconf(
            stereov_offline.mapping, stereov_offline.instrumented
        )
        assert vp.n_bits > 0
        assert vp.bitstream.n_tunable > 0
        # every TCON claims exactly two bits
        assert all(n == 2 for _b, n in vp.tcon_regions.values())

    def test_empty_design_rejected(self):
        from repro.netlist import LogicNetwork

        net = LogicNetwork("empty")
        net.add_pi("a")
        net.add_po_dummy = None
        with pytest.raises(Exception):
            run_generic_stage(net)


class TestConventionalFlow:
    def test_structure(self, stereov_net):
        res = run_conventional_flow(stereov_net, "abc")
        assert res.n_luts > res.phase1.n_luts
        assert res.n_instrumentation_luts > 0
        assert res.n_taps == len(res.instrumented.taps)
        assert "abc" in res.summary()

    def test_depth_within_one_of_golden(self, stereov_net, stereov_offline):
        sinks = user_sink_names(stereov_net)
        golden = stereov_offline.initial.depth_to(sinks)
        for mapper in ("simplemap", "abc"):
            res = run_conventional_flow(stereov_net, mapper)
            assert golden <= res.user_depth <= golden + 1

    def test_unknown_mapper(self, stereov_net):
        with pytest.raises(DebugFlowError):
            run_conventional_flow(stereov_net, "vivado")


class TestAnalysis:
    def test_table1_small(self):
        text = run_table1([get_spec("stereov.")])
        assert "stereov." in text and "Proposed" in text
        assert "paper" in text.lower()

    def test_table2_small(self):
        text = run_table2([get_spec("stereov.")])
        assert "Golden" in text

    def test_columns_cached(self):
        a = run_benchmark_columns(get_spec("stereov."))
        b = run_benchmark_columns(get_spec("stereov."))
        assert a is b

    def test_ascii_chart(self):
        chart = ascii_bar_chart([("x", {"a": 1.0, "b": 2.0})], width=10)
        assert "##########" in chart

    def test_save_result(self, tmp_path):
        p = save_result("unit", "hello", str(tmp_path))
        assert os.path.exists(p)
        with open(p) as fh:
            assert fh.read() == "hello\n"
