"""Slow integration tests over the benchmark suite (marked ``slow``).

Run with ``pytest -m slow`` (excluded from the default quick run only if
you deselect them; they are kept in the default run because the suite's
small subset finishes in well under a minute).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_benchmark_columns
from repro.baselines.conventional import user_sink_names
from repro.netlist import check_equivalent, validate_network
from repro.workloads import paper_suite

SMALL = [s for s in paper_suite() if s.n_gates < 1000]


@pytest.mark.parametrize("spec", SMALL, ids=lambda s: s.name)
class TestSuiteShape:
    def test_area_ordering(self, spec):
        cols = run_benchmark_columns(spec)
        conv = min(cols.sm.n_luts, cols.abc.n_luts)
        assert cols.proposed.n_luts < conv
        assert conv / cols.proposed.n_luts > 2.0

    def test_depth_matches_paper_golden(self, spec):
        cols = run_benchmark_columns(spec)
        golden = cols.initial.depth_to(cols.user_sinks)
        assert golden == spec.golden_depth
        assert cols.proposed.depth_to(cols.user_sinks) <= golden

    def test_proposed_mapping_equivalent(self, spec):
        cols = run_benchmark_columns(spec)
        lutnet = cols.proposed.to_lut_network()
        validate_network(lutnet)
        assert check_equivalent(
            cols.offline.instrumented.network,
            lutnet,
            n_vectors=128,
            n_cycles=4,
        )

    def test_tcon_count_scales_with_taps(self, spec):
        cols = run_benchmark_columns(spec)
        n_taps = len(cols.offline.taps)
        assert 1.0 * n_taps <= cols.proposed.n_tcons <= 2.0 * n_taps


@pytest.mark.slow
def test_full_suite_headline_ratio():
    """The paper's 3.5x claim over the whole suite (slow: ~2-3 minutes)."""
    ratios = []
    for spec in paper_suite():
        cols = run_benchmark_columns(spec)
        conv = (cols.sm.n_luts + cols.abc.n_luts) / 2
        ratios.append(conv / cols.proposed.n_luts)
    avg = sum(ratios) / len(ratios)
    assert 2.8 <= avg <= 4.5, f"headline ratio {avg:.2f} drifted"
