"""SCG behaviour, virtual PConf correctness, and cost-model derivations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costmodel import Virtex5Model
from repro.core.scg import SpecializedConfigGenerator
from repro.core.virtual import build_virtual_pconf, tlut_bit_expr
from repro.errors import SpecializationError
from repro.mapping.result import LutImpl
from repro.netlist.truthtable import TruthTable


@pytest.fixture(scope="module")
def offline():
    from repro.core.flow import DebugFlowConfig, run_generic_stage
    from repro.netlist import parse_blif
    from tests.conftest import TINY_SEQ_BLIF

    return run_generic_stage(
        parse_blif(TINY_SEQ_BLIF), DebugFlowConfig(n_buffer_inputs=2)
    )


class TestVirtualPConf:
    def test_every_lut_has_region(self, offline):
        vp = build_virtual_pconf(offline.mapping, offline.instrumented)
        assert set(vp.lut_regions) == set(offline.mapping.luts)
        assert set(vp.tcon_regions) == set(offline.mapping.tcons)

    def test_regions_disjoint(self, offline):
        vp = build_virtual_pconf(offline.mapping, offline.instrumented)
        spans = sorted(
            list(vp.lut_regions.values()) + list(vp.tcon_regions.values())
        )
        for (a_base, a_n), (b_base, _b_n) in zip(spans, spans[1:]):
            assert a_base + a_n <= b_base

    def test_static_lut_bits_match_function(self, offline):
        vp = build_virtual_pconf(offline.mapping, offline.instrumented)
        assign = offline.instrumented.param_space.zeros()
        bits, _ = vp.bitstream.specialize(assign)
        for root, (base, n) in vp.lut_regions.items():
            lut = offline.mapping.luts[root]
            if lut.is_tlut:
                continue
            for i in range(n):
                assert bits[base + i] == lut.func.eval_index(i)

    def test_tcon_bits_follow_select(self, offline):
        vp = build_virtual_pconf(offline.mapping, offline.instrumented)
        design = offline.instrumented
        for root, (base, _n) in vp.tcon_regions.items():
            t = offline.mapping.tcons[root]
            sel_name = design.network.node_name(t.sel)
            for sel_val in (0, 1):
                assign = design.param_space.assignment({sel_name: sel_val})
                bits, _ = vp.bitstream.specialize(assign)
                assert bits[base + 0] == (1 - sel_val)
                assert bits[base + 1] == sel_val

    def test_tlut_bit_expr_matches_cofactor(self):
        """TLUT config bits must reproduce the mixed function exactly."""
        # func over leaves (10, 20, 30) where 20 is the parameter (var 1):
        # f = mux(p, a, b) — classic tunable buffer pair
        a = TruthTable.var(0, 3)
        b = TruthTable.var(2, 3)
        p = TruthTable.var(1, 3)
        func = (~p & a) | (p & b)
        lut = LutImpl(root=99, leaves=(10, 20, 30), func=func, param_leaves=(20,))
        param_index_of = {20: 0}
        for phys_idx in range(4):  # 2 physical inputs: leaves 10 and 30
            expr = tlut_bit_expr(lut, phys_idx, param_index_of)
            for p_val in (0, 1):
                # full function evaluated with vars (a, p, b)
                a_val = phys_idx & 1
                b_val = (phys_idx >> 1) & 1
                want = func.eval_point([a_val, p_val, b_val])
                assert expr.evaluate({0: p_val}) == want


class TestScg:
    def test_respecialize_before_load_raises(self, offline):
        vp = build_virtual_pconf(offline.mapping, offline.instrumented)
        scg = SpecializedConfigGenerator(vp.bitstream)
        with pytest.raises(SpecializationError):
            scg.respecialize(offline.instrumented.param_space.zeros())

    def test_history_grows(self, offline):
        vp = build_virtual_pconf(offline.mapping, offline.instrumented)
        scg = SpecializedConfigGenerator(vp.bitstream)
        space = offline.instrumented.param_space
        scg.load_full(space.zeros())
        scg.respecialize(space.zeros())
        assert len(scg.history) == 2
        assert scg.total_modeled_overhead_s() >= 0

    def test_frames_count(self, offline):
        vp = build_virtual_pconf(offline.mapping, offline.instrumented)
        scg = SpecializedConfigGenerator(vp.bitstream, frame_bits=64)
        assert scg.n_frames == -(-vp.n_bits // 64)


class TestCostDerivations:
    def test_three_orders_of_magnitude(self):
        m = Virtex5Model()
        spec_s = m.evaluation_s(25_000, 20_000) + m.partial_reconfig_s(12)
        assert m.full_reconfig_s() / spec_s > 1000

    def test_debug_turn_amortization_quote(self):
        """Paper: 50 us overhead == 5000 turns at 400 MHz / 4 ticks."""
        m = Virtex5Model()
        assert m.break_even_turns(50e-6) == 5000
        assert m.debug_turn_s() * 5000 == pytest.approx(50e-6)

    def test_specialization_report_consistency(self):
        m = Virtex5Model()
        r = m.report(n_expr_nodes=100, n_tunable_bits=100, n_frames_touched=1)
        assert r.specialization_s == pytest.approx(
            r.evaluation_s + r.partial_reconfig_s
        )
        assert r.break_even_turns == m.break_even_turns(r.specialization_s)
