"""Workload generation and bug injection."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.netlist import (
    check_equivalent,
    logic_depth,
    network_stats,
    validate_network,
    write_blif,
)
from repro.workloads import generate_circuit, get_spec, inject_bug, paper_suite
from repro.workloads.perturb import BUG_KINDS
from repro.workloads.suites import PAPER_SUITE


SMALL = [s for s in paper_suite() if s.n_gates < 1000]


class TestSuite:
    def test_suite_has_eight_benchmarks(self):
        assert len(PAPER_SUITE) == 8

    def test_small_subset(self):
        names = [s.name for s in paper_suite(small_only=True)]
        assert names == ["stereov.", "diffeq2", "diffeq1"]

    def test_get_spec_unknown(self):
        with pytest.raises(KeyError):
            get_spec("nope")

    def test_paper_numbers_present(self):
        s = get_spec("clma")
        assert s.n_gates == 8381 and s.paper_sm_luts == 23694


class TestGenerator:
    @pytest.mark.parametrize("spec", SMALL, ids=lambda s: s.name)
    def test_exact_gate_count(self, spec):
        net = generate_circuit(spec)
        assert net.n_gates == spec.n_gates

    @pytest.mark.parametrize("spec", SMALL, ids=lambda s: s.name)
    def test_exact_gate_depth(self, spec):
        net = generate_circuit(spec)
        assert logic_depth(net) == spec.gate_depth_target

    @pytest.mark.parametrize("spec", SMALL, ids=lambda s: s.name)
    def test_structurally_valid(self, spec):
        validate_network(generate_circuit(spec))

    @pytest.mark.parametrize("spec", SMALL, ids=lambda s: s.name)
    def test_no_dead_logic(self, spec):
        net = generate_circuit(spec)
        counts = net.fanout_counts()
        dead = [g for g in net.gates() if counts[g] == 0]
        assert dead == []

    def test_deterministic(self):
        spec = get_spec("stereov.")
        assert write_blif(generate_circuit(spec, 1)) == write_blif(
            generate_circuit(spec, 1)
        )

    def test_seed_changes_circuit(self):
        spec = get_spec("stereov.")
        assert write_blif(generate_circuit(spec, 1)) != write_blif(
            generate_circuit(spec, 2)
        )

    def test_latch_count(self):
        spec = get_spec("diffeq2")
        assert generate_circuit(spec).n_latches == spec.n_latches

    def test_impossible_depth_raises(self):
        spec = dataclasses.replace(
            get_spec("stereov."), n_gates=3, gate_depth_target=10
        )
        with pytest.raises(WorkloadError):
            generate_circuit(spec)

    def test_golden_depth_calibration(self, stereov_offline):
        # the generator + ABC mapping reproduce the paper's Golden depth
        spec = get_spec("stereov.")
        from repro.baselines.conventional import user_sink_names

        sinks = user_sink_names(stereov_offline.source)
        assert stereov_offline.initial.depth_to(sinks) == spec.golden_depth


class TestBugInjection:
    def test_changes_local_function(self, tiny_seq, rng):
        net = tiny_seq.copy()
        bug = inject_bug(net, rng)
        assert net.func(bug.node) != bug.original_func

    @pytest.mark.parametrize("kind", BUG_KINDS)
    def test_each_kind(self, tiny_seq, rng, kind):
        net = tiny_seq.copy()
        bug = inject_bug(net, rng, kind=kind)
        assert bug.kind in BUG_KINDS
        assert net.func(bug.node) != bug.original_func

    def test_target_node(self, tiny_seq, rng):
        net = tiny_seq.copy()
        target = net.require("t1")
        bug = inject_bug(net, rng, node=target, kind="stuck_at")
        assert bug.node == target

    def test_non_gate_target_rejected(self, tiny_seq, rng):
        with pytest.raises(WorkloadError):
            inject_bug(tiny_seq.copy(), rng, node=tiny_seq.pis[0])

    def test_some_bug_is_observable(self, rng):
        golden = generate_circuit(get_spec("stereov."))
        found = False
        for _ in range(20):
            trial = golden.copy()
            inject_bug(trial, rng)
            if not check_equivalent(golden, trial, n_vectors=256, n_cycles=4):
                found = True
                break
        assert found, "20 random bugs all invisible — suspicious"
