"""The lane-parallel online engine: masks, lanes, batches, equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import (
    CampaignConfig,
    OfflineCache,
    run_campaign,
    run_scenario,
    run_scenario_batch,
)
from repro.core.debug import DebugSession
from repro.core.flow import run_generic_stage
from repro.core.tracebuffer import LaneTraceBuffer, TraceBuffer
from repro.emu.fault import ALL_LANES, ForcedFault, active_overrides
from repro.engine import LaneEngine
from repro.errors import DebugFlowError
from repro.netlist import parse_blif
from repro.netlist.simulate import apply_override, simulate_combinational
from repro.workloads import (
    campaign_spec,
    generate_circuit,
    mutation_scenarios,
    stuck_at_scenarios,
)
from repro.workloads.scenarios import (
    packed_signal_traces,
    signal_traces,
    stimulus_script,
)

SPEC = campaign_spec("engine-test", n_gates=100, depth=7, n_pis=16, n_pos=8)
HORIZON = 48


@pytest.fixture(scope="module")
def golden():
    return generate_circuit(SPEC)


@pytest.fixture(scope="module")
def offline(golden):
    return run_generic_stage(golden)


@pytest.fixture(scope="module")
def scenarios():
    return stuck_at_scenarios(SPEC, 4, horizon=HORIZON)


class TestMaskedOverrides:
    def test_apply_override_blend_formula(self):
        clean = np.array([0b1100], dtype=np.uint64)
        forced = np.array([0b0011], dtype=np.uint64)
        mask = np.array([0b1010], dtype=np.uint64)
        out = apply_override(clean, (forced, mask))
        # value = (clean & ~mask) | (forced & mask), lane by lane
        assert out[0] == np.uint64(0b0110)
        # full-array form replaces wholesale
        assert apply_override(clean, forced)[0] == forced[0]

    def test_masked_gate_override_isolates_lanes(self):
        net = parse_blif(
            ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end"
        )
        a, b = net.pis
        y = net.require("y")
        ones = np.array([np.uint64(0xFFFFFFFFFFFFFFFF)], dtype=np.uint64)
        # force y to 1 in lane 3 only, while a&b computes 0 everywhere
        forced = (
            np.array([np.uint64(1 << 3)], dtype=np.uint64),
            np.array([np.uint64(1 << 3)], dtype=np.uint64),
        )
        vals = simulate_combinational(
            net,
            {a: ones.copy() * 0, b: ones.copy()},
            overrides={y: forced},
        )
        assert int(vals[y][0]) == 1 << 3

    def test_active_overrides_full_vs_masked_forms(self):
        full = ForcedFault(node=7, value=1)
        got = active_overrides([full], 0)
        assert isinstance(got[7], np.ndarray)
        assert got[7][0] == np.uint64(ALL_LANES)

        lane5 = ForcedFault(node=7, value=1, lane_mask=1 << 5)
        got = active_overrides([lane5], 0)
        forced, mask = got[7]
        assert int(forced[0]) == 1 << 5 and int(mask[0]) == 1 << 5

    def test_active_overrides_accumulates_lanes_per_node(self):
        f0 = ForcedFault(node=3, value=1, lane_mask=1 << 0)
        f1 = ForcedFault(node=3, value=0, lane_mask=1 << 1)
        forced, mask = active_overrides([f0, f1], 0)[3]
        assert int(mask[0]) == 0b11
        assert int(forced[0]) == 0b01  # lane 0 forced high, lane 1 low

    def test_window_respected(self):
        f = ForcedFault(node=1, value=1, first_cycle=2, last_cycle=3)
        assert active_overrides([f], 1) is None
        assert active_overrides([f], 2) is not None
        assert active_overrides([f], 4) is None


class TestLaneTraceBuffer:
    def test_lane_windows_match_solo_buffers(self):
        rng = np.random.default_rng(7)
        n_lanes, width, depth = 5, 3, 8
        packed = LaneTraceBuffer(width=width, depth=depth, n_lanes=n_lanes)
        solos = [TraceBuffer(width=width, depth=depth) for _ in range(n_lanes)]
        for _ in range(13):  # spans the wrap-around
            bits = rng.integers(0, 2, size=(n_lanes, width))
            sample = np.zeros(width, dtype=np.uint64)
            for lane in range(n_lanes):
                solos[lane].capture(bits[lane].tolist())
                for ch in range(width):
                    if bits[lane][ch]:
                        sample[ch] |= np.uint64(1 << lane)
            packed.capture(sample)
        for lane in range(n_lanes):
            assert np.array_equal(packed.window(lane), solos[lane].window())

    def test_per_lane_trigger_freezes_only_that_lane(self):
        packed = LaneTraceBuffer(width=1, depth=8, n_lanes=2, post_trigger=2)
        solo = TraceBuffer(width=1, depth=8, post_trigger=2)
        for cyc in range(8):
            sample = np.array([np.uint64(0b11 if cyc % 2 else 0)], dtype=np.uint64)
            packed.capture(sample, trigger_mask=0b01 if cyc == 1 else 0)
            solo.capture([cyc % 2], trigger=cyc == 1)
        assert packed.stopped(0) and not packed.stopped(1)
        assert packed.triggered_at(0) == 1 and packed.triggered_at(1) is None
        assert np.array_equal(packed.window(0), solo.window())
        # the live lane kept recording all 8 cycles
        assert packed.window(1).shape == (8, 1)

    def test_lane_bounds(self):
        with pytest.raises(DebugFlowError):
            LaneTraceBuffer(width=1, depth=4, n_lanes=0)
        tb = LaneTraceBuffer(width=1, depth=4, n_lanes=2)
        with pytest.raises(DebugFlowError):
            tb.window(2)
        # beyond 64 lanes the rows simply widen (multi-word addressing)
        wide = LaneTraceBuffer(width=1, depth=4, n_lanes=65)
        assert wide.n_words == 2


class TestPackedGolden:
    def test_packed_signal_traces_match_serial_per_lane(self, golden):
        stims = [stimulus_script(golden, 16, seed) for seed in (1, 2, 9)]
        names = [golden.node_name(p) for p in golden.pis][:2] + list(
            golden.po_names
        )
        packed = packed_signal_traces(golden, stims, names)
        for lane, stim in enumerate(stims):
            serial = signal_traces(golden, stim, names)
            for n in serial:
                lane_bits = (
                    (packed[n][:, 0] >> np.uint64(lane)) & np.uint64(1)
                ).astype(np.uint8)
                assert np.array_equal(lane_bits, serial[n]), n

    def test_multiword_lanes_and_horizon_check(self, golden):
        # 65 lanes span two packed words; lane 64 = word 1, bit 0
        stims = [stimulus_script(golden, 8, seed) for seed in range(65)]
        names = list(golden.po_names)[:2]
        packed = packed_signal_traces(golden, stims, names)
        for n in names:
            assert packed[n].shape == (8, 2)
        serial = signal_traces(golden, stims[64], names)
        for n in names:
            lane_bits = (packed[n][:, 1] & np.uint64(1)).astype(np.uint8)
            assert np.array_equal(lane_bits, serial[n]), n
        with pytest.raises(Exception):
            packed_signal_traces(golden, [[{}], [{}, {}]], [])


class TestLaneIsolation:
    def test_fault_in_lane_k_leaves_other_lanes_untouched(
        self, offline, golden, scenarios
    ):
        sc = scenarios[0]
        stim = stimulus_script(golden, HORIZON, sc.stimulus_seed)
        sig, value = sc.fault_signal, sc.fault_value

        clean = DebugSession(offline)
        clean.observe([sig])
        clean.run(HORIZON, stimulus=lambda c: stim[c])
        baseline = clean.waveforms()[sig]

        engine = LaneEngine(offline, n_lanes=4, trace_depth=HORIZON)
        for lane in range(4):
            engine.bind_stimulus(lane, stim)
            engine.observe([sig], lane=lane)
        engine.force(sig, value, lane=2)
        engine.reset()
        engine.run(HORIZON)
        for lane in range(4):
            wave = engine.waveforms(lane)[sig]
            if lane == 2:
                assert np.all(wave == value)
                assert not np.array_equal(wave, baseline)
            else:
                assert np.array_equal(wave, baseline), f"lane {lane} disturbed"

    def test_full_word_of_lanes_reproduces_solo_trace_bitforbit(
        self, offline, golden, scenarios
    ):
        # all 64 lanes armed with per-lane stimuli and a fault in every
        # other lane: each lane's trace must equal the solo session's
        sc = scenarios[0]
        sig, value = sc.fault_signal, sc.fault_value
        stims = [stimulus_script(golden, 24, seed) for seed in range(64)]
        engine = LaneEngine(offline, n_lanes=64, trace_depth=24)
        for lane in range(64):
            engine.bind_stimulus(lane, stims[lane])
            engine.observe([sig], lane=lane)
            if lane % 2:
                engine.force(sig, value, lane=lane)
        engine.reset()
        engine.run(24)
        for lane in (0, 1, 31, 32, 62, 63):
            solo = DebugSession(offline, trace_depth=24)
            solo.observe([sig])
            if lane % 2:
                solo.force(sig, value)
            solo.reset()
            solo.run(24, stimulus=lambda c: stims[lane][c])
            assert np.array_equal(
                engine.waveforms(lane)[sig], solo.waveforms()[sig]
            ), f"lane {lane}"

    def test_lanes_observe_different_signals_simultaneously(
        self, offline, golden
    ):
        stim = stimulus_script(golden, 16, 5)
        sigs = DebugSession(offline).observable_signals[:2]
        engine = LaneEngine(offline, n_lanes=2, trace_depth=16)
        for lane, sig in enumerate(sigs):
            engine.bind_stimulus(lane, stim)
            engine.observe([sig], lane=lane)
        engine.reset()
        engine.run(16)
        for lane, sig in enumerate(sigs):
            solo = DebugSession(offline, trace_depth=16)
            solo.observe([sig])
            solo.run(16, stimulus=lambda c: stim[c])
            assert np.array_equal(
                engine.waveforms(lane)[sig], solo.waveforms()[sig]
            )

    def test_cycles_charged_only_to_participating_lanes(self, offline, golden):
        # a retired lane's turn log must not accrue cycles from replays it
        # no longer takes part in (solo-session accounting parity)
        stim = stimulus_script(golden, 8, 3)
        sig = DebugSession(offline).observable_signals[0]
        engine = LaneEngine(offline, n_lanes=2, trace_depth=8)
        for lane in range(2):
            engine.bind_stimulus(lane, stim)
            engine.observe([sig], lane=lane)
        engine.run(8, lanes=[0])
        assert engine.total_cycles(0) == 8
        assert engine.total_cycles(1) == 0
        engine.run(8)  # default: everyone
        assert engine.total_cycles(0) == 16
        assert engine.total_cycles(1) == 8

    def test_engine_validates_lanes_and_signals(self, offline):
        engine = LaneEngine(offline, n_lanes=2)
        with pytest.raises(DebugFlowError):
            engine.observe(["x"], lane=2)
        with pytest.raises(DebugFlowError):
            engine.force("no_such_signal", 1, lane=0)
        with pytest.raises(DebugFlowError):
            LaneEngine(offline, n_lanes=0)
        with pytest.raises(DebugFlowError):
            # the interpreted escape hatch stays single-word
            LaneEngine(offline, n_lanes=65, interpreted=True)


class TestFacade:
    def test_session_is_one_lane_engine(self, offline):
        session = DebugSession(offline)
        assert isinstance(session.engine, LaneEngine)
        assert session.engine.n_lanes == 1
        assert session.trace.lane == 0

    def test_session_force_is_lane_masked(self, offline):
        session = DebugSession(offline)
        fault = session.force(session.observable_signals[0], 1)
        assert fault.lane_mask == 1  # lane 0 only — bit 0 is all a
        # 1-lane engine ever reads


class TestBatchEquivalence:
    def test_batch_outcomes_identical_to_serial(self, offline, scenarios):
        serial = [run_scenario(sc, offline, max_turns=48) for sc in scenarios]
        batch = run_scenario_batch(scenarios, offline, max_turns=48)
        assert [r.outcome() for r in batch] == [r.outcome() for r in serial]
        assert [r.modeled_overhead_s for r in batch] == [
            r.modeled_overhead_s for r in serial
        ]
        assert all(r.lane_batch == len(scenarios) for r in batch)
        assert [r.lane for r in batch] == list(range(len(scenarios)))

    def test_bad_lane_degrades_alone(self, offline, scenarios):
        import dataclasses

        broken = dataclasses.replace(scenarios[0], fault_signal="nope")
        batch = run_scenario_batch(
            [broken] + list(scenarios[1:]), offline, max_turns=48
        )
        assert batch[0].status == "error" and "nope" in batch[0].error
        good = [run_scenario(sc, offline) for sc in scenarios[1:]]
        assert [r.outcome() for r in batch[1:]] == [r.outcome() for r in good]

    def test_campaign_lane_width_equivalence_mixed(self):
        scenarios = stuck_at_scenarios(SPEC, 3, horizon=HORIZON) + (
            mutation_scenarios(SPEC, 1, horizon=HORIZON)
        )
        serial = run_campaign(
            scenarios, config=CampaignConfig(lane_width=1), cache=OfflineCache()
        )
        lanes = run_campaign(
            scenarios,
            config=CampaignConfig(lane_width=64),
            cache=OfflineCache(),
        )
        assert serial.outcomes() == lanes.outcomes()
        assert serial.lane_batches == [] and lanes.lane_batches
        assert sum(lanes.lane_batches) == len(scenarios)
        assert "lane batch" in lanes.render()

    def test_narrow_lane_width_still_identical(self, offline, scenarios):
        wide = run_campaign(
            scenarios, config=CampaignConfig(lane_width=64), cache=OfflineCache()
        )
        narrow = run_campaign(
            scenarios, config=CampaignConfig(lane_width=2), cache=OfflineCache()
        )
        assert wide.outcomes() == narrow.outcomes()
        assert max(narrow.lane_batches) <= 2


@pytest.mark.slow
class TestAcceptance:
    def test_32_scenario_mixed_campaign_byte_identical(self):
        """The PR's correctness bar: ≥32 mixed scenarios, lane-batched
        outcomes byte-identical to the serial per-session path."""
        spec = campaign_spec(
            "engine-accept", n_gates=120, depth=8, n_pis=20, n_pos=10
        )
        scenarios = stuck_at_scenarios(spec, 26, horizon=HORIZON) + (
            mutation_scenarios(spec, 6, horizon=HORIZON)
        )
        assert len(scenarios) >= 32
        serial = run_campaign(
            scenarios, config=CampaignConfig(lane_width=1), cache=OfflineCache()
        )
        lanes = run_campaign(
            scenarios,
            config=CampaignConfig(lane_width=64),
            cache=OfflineCache(),
        )
        assert serial.outcomes() == lanes.outcomes()
        # the stuck-at group actually packed into a >1-lane batch
        assert max(lanes.lane_batches) >= 26
