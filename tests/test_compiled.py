"""Compiled simulation kernels: parity, caching, multi-word lanes.

The compiled path must be **bit-identical** to the reference interpreter
over every node, every cycle, for every network shape the stack
produces — mapped and unmapped, sequential and combinational, with and
without lane-masked overrides, single- and multi-word.  These tests pin
that down with randomized sweeps, then cover the program caches, the
>64-lane engine and the 128-scenario campaign equivalence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignConfig,
    OfflineCache,
    run_campaign,
)
from repro.core.debug import DebugSession
from repro.core.flow import run_generic_stage
from repro.emu.fault import ALL_LANES, FaultInjector, active_override_ints, ForcedFault
from repro.engine import LaneEngine
from repro.errors import SimulationError
from repro.netlist import parse_blif
from repro.netlist.compiled import (
    COMPILED_SIM_STAGE,
    CompiledProgram,
    CompiledSimulator,
    compile_network,
    network_signature,
    program_for,
)
from repro.netlist.simulate import SequentialSimulator, simulate_combinational
from repro.workloads import campaign_spec, generate_circuit, stuck_at_scenarios
from repro.workloads.scenarios import stimulus_script

U64MAX = np.iinfo(np.uint64).max


def _rand_words(rng, n_words):
    return rng.integers(0, U64MAX, size=n_words, dtype=np.uint64, endpoint=True)


def _rand_overrides(rng, net, n_words, *, lane_masked: bool):
    """A random override dict over gates, PIs and latch outputs."""
    nodes = list(net.nodes())
    picks = rng.choice(nodes, size=min(4, len(nodes)), replace=False)
    out = {}
    for nid in picks:
        if lane_masked:
            out[int(nid)] = (_rand_words(rng, n_words), _rand_words(rng, n_words))
        else:
            out[int(nid)] = _rand_words(rng, n_words)
    return out


def _assert_step_parity(net, n_words, rng, n_cycles=10, *, lane_masked=True):
    interp = SequentialSimulator(net, n_words=n_words, interpreted=True)
    compiled = SequentialSimulator(net, n_words=n_words)
    for cyc in range(n_cycles):
        stim = {p: _rand_words(rng, n_words) for p in net.pis}
        ov = None
        if cyc % 3 == 1:
            ov = _rand_overrides(rng, net, n_words, lane_masked=lane_masked)
        elif cyc % 3 == 2:
            ov = _rand_overrides(rng, net, n_words, lane_masked=False)
        vi = interp.step(stim, overrides=ov)
        vc = compiled.step(stim, overrides=ov)
        for nid in net.nodes():
            assert np.array_equal(vi[nid], vc[nid]), (
                f"cycle {cyc}, node {net.node_name(nid)!r}"
            )


class TestRandomizedParity:
    @pytest.mark.parametrize("n_words", [1, 2])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_combinational_network_parity(self, seed, n_words):
        spec = campaign_spec(
            f"par-comb-{seed}", n_gates=90, depth=7, n_pis=12, n_pos=6
        )
        net = generate_circuit(spec, seed)
        _assert_step_parity(net, n_words, np.random.default_rng(seed))

    @pytest.mark.parametrize("n_words", [1, 2])
    @pytest.mark.parametrize("seed", [4, 5])
    def test_sequential_network_parity(self, seed, n_words):
        spec = campaign_spec(
            f"par-seq-{seed}",
            n_gates=80,
            depth=6,
            n_latches=8,
            n_pis=10,
            n_pos=5,
        )
        net = generate_circuit(spec, seed)
        _assert_step_parity(net, n_words, np.random.default_rng(seed))

    def test_mapped_network_parity(self):
        spec = campaign_spec("par-map", n_gates=110, depth=8, n_pis=14, n_pos=7)
        offline = run_generic_stage(generate_circuit(spec, 7))
        mapped = offline.mapping.to_lut_network()
        _assert_step_parity(mapped, 1, np.random.default_rng(7))
        _assert_step_parity(mapped, 2, np.random.default_rng(8))

    def test_combinational_entry_point_parity(self):
        spec = campaign_spec("par-cmb", n_gates=70, depth=6, n_pis=10, n_pos=5)
        net = generate_circuit(spec, 11)
        rng = np.random.default_rng(11)
        stim = {s: _rand_words(rng, 1) for s in net.sources()}
        for ov in (
            None,
            _rand_overrides(rng, net, 1, lane_masked=True),
            _rand_overrides(rng, net, 1, lane_masked=False),
        ):
            vi = simulate_combinational(net, stim, overrides=ov, interpreted=True)
            vc = simulate_combinational(net, stim, overrides=ov)
            for nid in net.nodes():
                assert np.array_equal(vi[nid], vc[nid])

    def test_constant_gate_override_parity(self):
        # constants are folded out of the kernel; an override on one must
        # still blend and un-blend exactly like the interpreter
        net = parse_blif(
            ".model c\n.inputs a\n.outputs y\n.names k\n"
            "\n.names a k y\n11 1\n.end"
        )
        k = net.require("k")
        stim = {net.pis[0]: np.array([U64MAX], dtype=np.uint64)}
        forced = (
            np.array([np.uint64(0xFF)], dtype=np.uint64),
            np.array([np.uint64(0xFF)], dtype=np.uint64),
        )
        for ov in ({k: forced}, None, {k: forced}, None):
            vi = simulate_combinational(net, stim, overrides=ov, interpreted=True)
            vc = simulate_combinational(net, stim, overrides=ov)
            for nid in net.nodes():
                assert np.array_equal(vi[nid], vc[nid]), (ov, nid)

    def test_missing_source_raises(self):
        net = parse_blif(
            ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end"
        )
        with pytest.raises(SimulationError):
            simulate_combinational(net, {net.pis[0]: np.zeros(1, np.uint64)})
        with pytest.raises(SimulationError):
            SequentialSimulator(net).step({net.pis[0]: np.zeros(1, np.uint64)})


class TestProgramCache:
    def test_signature_is_structural_not_nominal(self):
        a = parse_blif(
            ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end"
        )
        b = parse_blif(
            ".model m2\n.inputs p q\n.outputs z\n.names p q z\n11 1\n.end"
        )
        c = parse_blif(
            ".model m3\n.inputs a b\n.outputs y\n.names a b y\n1- 1\n-1 1\n.end"
        )
        assert network_signature(a) == network_signature(b)
        assert network_signature(a) != network_signature(c)

    def test_signature_keyed_reuse_and_mutation_invalidation(self):
        spec = campaign_spec("cache-t", n_gates=40, depth=5, n_pis=8, n_pos=4)
        net1 = generate_circuit(spec, 1)
        net2 = generate_circuit(spec, 1)  # regenerated, structurally equal
        p1 = program_for(net1)
        assert program_for(net1) is p1  # instance-keyed fast path
        assert program_for(net2) is p1  # signature-keyed reuse
        # in-place mutation must recompile, not serve the stale program
        gate = next(net1.gates())
        net1.rewire(gate, net1.fanins(gate), ~net1.func(gate))
        assert program_for(net1) is not p1

    def test_rewire_revalidates_across_backends(self):
        """An in-place rewire queried under a *different* backend must
        recompile and re-lower — the numpy vector plan hangs off the
        program object, so a stale program would mean a stale plan."""
        from repro.netlist.vector import plan_for

        spec = campaign_spec("cache-b", n_gates=40, depth=5, n_pis=8, n_pos=4)
        net = generate_circuit(spec, 2)
        p1 = program_for(net)
        # warm both backends on the original program: python kernels and
        # the vector plan are both cached on the program instance
        py1 = CompiledSimulator(p1, 2, backend="python")
        np1 = CompiledSimulator(p1, 2, backend="numpy")
        stim = {p: 0x5A5A_5A5A_5A5A_5A5A for p in net.pis}
        py1.step(stim)
        np1.step(stim)
        plan1 = plan_for(p1)
        assert p1._vector_plan is plan1

        gate = next(net.gates())
        net.rewire(gate, net.fanins(gate), ~net.func(gate))
        # first post-rewire query arrives from the numpy side
        p2 = program_for(net)
        assert p2 is not p1
        assert plan_for(p2) is not plan1  # fresh lowering, not the stale plan
        py2 = CompiledSimulator(p2, 2, backend="python")
        np2 = CompiledSimulator(p2, 2, backend="numpy")
        py2.step(stim)
        np2.step(stim)
        nodes = list(net.nodes())
        assert py2.node_ints(nodes) == np2.node_ints(nodes)
        # the inverted gate actually changed value — a stale program or
        # plan would have kept serving the old function
        assert py2.value(gate) == py1.value(gate) ^ py1.full_mask
        assert np2.value(gate) == np1.value(gate) ^ np1.full_mask

    def test_store_persistence_round_trip(self, tmp_path):
        spec = campaign_spec("cache-d", n_gates=40, depth=5, n_pis=8, n_pos=4)
        net = generate_circuit(spec, 3)
        store = ArtifactStore(cache_dir=str(tmp_path))
        program = program_for(net, store=store)
        assert store.count(COMPILED_SIM_STAGE) == 1
        # a fresh store over the same directory (fresh process model) must
        # serve the program from disk — and it must still execute
        import repro.netlist.compiled as compiled_mod

        compiled_mod._BY_KEY.clear()
        compiled_mod._BY_NET.clear()
        restarted = ArtifactStore(cache_dir=str(tmp_path))
        again = program_for(net, store=restarted)
        assert restarted.stats.for_stage(COMPILED_SIM_STAGE).disk_hits == 1
        assert again.signature == program.signature
        sim = CompiledSimulator(again)
        sim.step({p: U64MAX for p in net.pis})

    def test_program_pickles_without_kernels(self):
        import pickle

        net = parse_blif(
            ".model m\n.inputs a b\n.outputs y\n.names a b y\n10 1\n01 1\n.end"
        )
        program = compile_network(net)
        program.kernels()  # generate, then ensure pickling drops them
        clone = pickle.loads(pickle.dumps(program))
        assert isinstance(clone, CompiledProgram)
        assert clone.ops == program.ops
        sim = CompiledSimulator(clone)
        sim.step({net.pis[0]: 0b1100, net.pis[1]: 0b1010})
        assert sim.value(net.require("y")) == 0b0110


class TestBlockEvaluation:
    """Direct coverage for the numpy backend's cycle-batched entry
    points (the lane engine and the kernel bench consume them)."""

    def _program(self, seed=9):
        spec = campaign_spec("blk-t", n_gates=60, depth=6, n_pis=10, n_pos=5)
        net = generate_circuit(spec, seed)
        return net, program_for(net)

    def test_run_block_matches_stepwise(self):
        net, program = self._program()
        rng = np.random.default_rng(9)
        nw = 4
        stepper = CompiledSimulator(program, nw, backend="numpy")
        blocker = CompiledSimulator(program, nw, backend="numpy")
        gate = int(next(net.gates()))
        full = stepper.full_mask
        rows, ovr = [], []
        for c in range(blocker.block_cycles):
            rows.append(
                {
                    p: int.from_bytes(rng.bytes(8 * nw), "little")
                    for p in net.pis
                }
            )
            ovr.append(
                {gate: (int(rng.integers(0, 2)) * full, 0xFF << (64 * (c % nw)))}
                if c % 2
                else None
            )
        nodes = list(net.nodes())
        expected = []
        for row, ov in zip(rows, ovr):
            stepper.step(row, overrides=ov)
            expected.append(stepper.node_ints(nodes))
        blocker.run_block(rows, ovr)
        assert blocker.cycle == stepper.cycle
        assert blocker.node_ints(nodes) == expected[-1]
        out = np.empty(
            (len(nodes), blocker.block_cycles * nw), dtype=np.uint64
        )
        blocker.block_export(nodes, out)
        for c in range(len(rows)):
            got = [
                int.from_bytes(
                    out[i, c * nw : (c + 1) * nw].tobytes(), "little"
                )
                for i in range(len(nodes))
            ]
            assert got == expected[c], f"cycle {c}"

    def test_run_block_array_matches_run_block(self):
        net, program = self._program(10)
        rng = np.random.default_rng(10)
        nw = 4
        a = CompiledSimulator(program, nw, backend="numpy")
        b = CompiledSimulator(program, nw, backend="numpy")
        n_cycles = a.block_cycles
        stim = rng.integers(
            0,
            U64MAX,
            size=(len(program.pi_nodes), n_cycles * nw),
            dtype=np.uint64,
            endpoint=True,
        )
        rows = [
            {
                int(p): int.from_bytes(
                    stim[i, c * nw : (c + 1) * nw].tobytes(), "little"
                )
                for i, p in enumerate(program.pi_nodes)
            }
            for c in range(n_cycles)
        ]
        a.run_block(rows)
        b.run_block_array(stim)
        assert a.cycle == b.cycle
        nodes = list(net.nodes())
        assert a.node_ints(nodes) == b.node_ints(nodes)
        outa = np.empty((len(nodes), n_cycles * nw), dtype=np.uint64)
        outb = np.empty_like(outa)
        a.block_export(nodes, outa)
        b.block_export(nodes, outb)
        assert np.array_equal(outa, outb)

    def test_run_block_array_rejects_bad_inputs(self):
        _net, program = self._program(11)
        n_pis = len(program.pi_nodes)
        py = CompiledSimulator(program, 4, backend="python")
        with pytest.raises(SimulationError, match="numpy backend"):
            py.run_block_array(np.zeros((n_pis, 4), dtype=np.uint64))
        vec = CompiledSimulator(program, 4, backend="numpy")
        with pytest.raises(SimulationError, match="shape"):
            vec.run_block_array(np.zeros((n_pis + 1, 4), dtype=np.uint64))
        with pytest.raises(SimulationError, match="shape"):
            vec.run_block_array(np.zeros((n_pis, 3), dtype=np.uint64))
        with pytest.raises(SimulationError, match="shape"):
            vec.run_block_array(np.zeros((n_pis, 4), dtype=np.int64))
        with pytest.raises(SimulationError):
            vec.run_block_array(
                np.zeros(
                    (n_pis, 4 * (vec.block_cycles + 1)), dtype=np.uint64
                )
            )


class TestMultiWordLanes:
    def test_fault_injector_lane_mask_isolates_lanes(self):
        net = parse_blif(
            ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end"
        )
        fi = FaultInjector(net, n_words=2)
        fi.stuck_at("a", 0, lane_mask=1 << 77)
        vals = fi.step({net.pis[0]: np.full(2, U64MAX, dtype=np.uint64)})
        y = vals[net.require("y")]
        assert y[0] == U64MAX  # word 0 untouched
        assert y[1] == U64MAX ^ np.uint64(1 << 13)  # lane 77 = word 1 bit 13

    def test_active_override_ints_all_lanes_expands_to_every_word(self):
        f = ForcedFault(node=3, value=1)
        ov = active_override_ints([f], 0, n_words=2)
        forced, mask = ov[3]
        assert forced == mask == (1 << 128) - 1
        lane70 = ForcedFault(node=3, value=1, lane_mask=1 << 70)
        forced, mask = active_override_ints([lane70], 0, n_words=2)[3]
        assert mask == 1 << 70
        assert active_override_ints([f], 5, n_words=1)[3][1] == ALL_LANES

    def test_engine_lane_beyond_64_matches_solo_session(self):
        spec = campaign_spec("wide-eng", n_gates=100, depth=7, n_pis=16, n_pos=8)
        golden = generate_circuit(spec)
        offline = run_generic_stage(golden)
        scenarios = stuck_at_scenarios(spec, 1, horizon=24)
        sc = scenarios[0]
        stims = [stimulus_script(golden, 24, seed) for seed in range(96)]

        engine = LaneEngine(offline, n_lanes=96, trace_depth=24)
        assert engine.n_words == 2
        for lane in range(96):
            engine.bind_stimulus(lane, stims[lane])
            engine.observe([sc.fault_signal], lane=lane)
            if lane % 2:
                engine.force(sc.fault_signal, sc.fault_value, lane=lane)
        engine.reset()
        engine.run(24)
        for lane in (0, 63, 64, 65, 77, 95):
            solo = DebugSession(offline, trace_depth=24)
            solo.observe([sc.fault_signal])
            if lane % 2:
                solo.force(sc.fault_signal, sc.fault_value)
            solo.reset()
            solo.run(24, stimulus=lambda c: stims[lane][c])
            assert np.array_equal(
                engine.waveforms(lane)[sc.fault_signal],
                solo.waveforms()[sc.fault_signal],
            ), f"lane {lane}"

    def test_run_outputs_early_stop_trims_and_matches(self):
        spec = campaign_spec("stop-eng", n_gates=80, depth=6, n_pis=12, n_pos=6)
        golden = generate_circuit(spec)
        offline = run_generic_stage(golden)
        stim = stimulus_script(golden, 32, 3)
        engine = LaneEngine(offline, n_lanes=2)
        for lane in range(2):
            engine.bind_stimulus(lane, stim)
        full = engine.run_outputs(32)
        assert full.shape == (32, len(engine.user_po_names), 1)
        engine.reset()
        stopped = engine.run_outputs(32, stop=lambda c, row: c == 9)
        assert stopped.shape[0] == 10
        assert np.array_equal(stopped, full[:10])


class TestWideCampaignEquivalence:
    """The acceptance criterion: a 128-scenario campaign at lane_width
    128 (two packed words) produces byte-identical outcomes to 64 and 1."""

    @pytest.mark.slow
    def test_128_scenario_campaign_at_width_128_vs_64_vs_1(self):
        spec = campaign_spec(
            "wide-camp", n_gates=400, depth=8, n_pis=25, n_pos=12
        )
        scenarios = stuck_at_scenarios(spec, 128, horizon=32)
        cache = OfflineCache()
        run_campaign(
            scenarios[:1], config=CampaignConfig(lane_width=1), cache=cache
        )

        wide = run_campaign(
            scenarios, config=CampaignConfig(lane_width=128), cache=cache
        )
        packed = run_campaign(
            scenarios, config=CampaignConfig(lane_width=64), cache=cache
        )
        serial = run_campaign(
            scenarios, config=CampaignConfig(lane_width=1), cache=cache
        )

        assert wide.lane_batches == [128]
        assert packed.lane_batches == [64, 64]
        assert wide.outcomes() == packed.outcomes() == serial.outcomes()
        assert "error" not in {r.status for r in wide.results}
        assert [r.modeled_overhead_s for r in wide.results] == [
            r.modeled_overhead_s for r in serial.results
        ]
