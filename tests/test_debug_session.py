"""The online debug loop: sessions, trace buffers, selection strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.debug import DebugSession
from repro.core.flow import DebugFlowConfig, run_generic_stage
from repro.core.selection import (
    ConeOfInfluenceSelection,
    ManualSelection,
    RoundRobinSweep,
)
from repro.core.tracebuffer import TraceBuffer
from repro.errors import DebugFlowError
from repro.netlist import parse_blif
from repro.netlist.simulate import SequentialSimulator
from tests.conftest import TINY_SEQ_BLIF


@pytest.fixture(scope="module")
def offline():
    net = parse_blif(TINY_SEQ_BLIF)
    return run_generic_stage(net, DebugFlowConfig(n_buffer_inputs=2))


@pytest.fixture
def session(offline):
    return DebugSession(offline, trace_depth=64)


class TestTraceBuffer:
    def test_window_order(self):
        tb = TraceBuffer(width=1, depth=4)
        for i in range(6):
            tb.capture([i % 2])
        w = tb.window()
        assert w.shape == (4, 1)
        assert w[:, 0].tolist() == [0, 1, 0, 1]

    def test_partial_fill(self):
        tb = TraceBuffer(width=2, depth=8)
        tb.capture([1, 0])
        assert tb.window().shape == (1, 2)

    def test_trigger_stops_capture(self):
        tb = TraceBuffer(width=1, depth=8, post_trigger=2)
        tb.capture([0], trigger=True)
        tb.capture([1])
        assert tb.stopped
        tb.capture([1])  # ignored
        assert tb.window().shape[0] == 2
        assert tb.triggered_at == 0

    def test_reset(self):
        tb = TraceBuffer(width=1, depth=4)
        tb.capture([1], trigger=True)
        tb.reset()
        assert tb.window().shape == (0, 1) or tb.window().size == 0
        assert tb.triggered_at is None

    def test_bad_dims(self):
        with pytest.raises(DebugFlowError):
            TraceBuffer(width=0, depth=4)
        tb = TraceBuffer(width=2, depth=4)
        with pytest.raises(DebugFlowError):
            tb.capture([1])

    def test_channel(self):
        tb = TraceBuffer(width=2, depth=4)
        tb.capture([1, 0])
        assert tb.channel(0).tolist() == [1]
        with pytest.raises(DebugFlowError):
            tb.channel(5)


class TestSession:
    def test_observe_and_run(self, session):
        sigs = session.observable_signals[:2]
        hookup = session.observe(sigs)
        assert set(hookup.values()) >= set(sigs)
        window = session.run(10, stimulus=lambda c: {"a": c & 1})
        assert window.shape == (10, session.design.n_buffer_inputs)

    def test_waveform_matches_reference(self, offline, session, rng):
        sig = session.observable_signals[0]
        session.observe([sig])
        stim_script = [
            {n: int(rng.integers(0, 2)) for n in ("a", "b", "c")}
            for _ in range(24)
        ]
        session.run(24, stimulus=lambda c: stim_script[c])
        wave = session.waveforms()[sig]

        ref = SequentialSimulator(offline.source, n_words=1)
        expected = []
        for stim in stim_script:
            vals = ref.step(
                {
                    p: np.array(
                        [0xFFFFFFFFFFFFFFFF if stim[ref.net.node_name(p)] else 0],
                        dtype=np.uint64,
                    )
                    for p in ref.net.pis
                }
            )
            expected.append(int(vals[ref.net.require(sig)][0] & np.uint64(1)))
        assert wave.tolist() == expected

    def test_turn_accounting(self, session):
        session.observe(session.observable_signals[:1])
        session.run(5, stimulus=lambda c: {})
        session.observe(session.observable_signals[1:2])
        session.run(7, stimulus=lambda c: {})
        assert len(session.turns) == 2
        assert session.total_cycles() == 12
        rep = session.amortization_report()
        assert rep["specializations"] == 2.0
        assert rep["modeled_overhead_s"] > 0

    def test_trigger_stops_window(self, session):
        session.observe(session.observable_signals[:1])
        session.run(
            40,
            stimulus=lambda c: {"a": 1, "b": 1, "c": 1},
            trigger=lambda cyc, buffers: cyc == 5,
        )
        assert session.trace.stopped

    def test_negative_cycles_rejected(self, session):
        session.observe(session.observable_signals[:1])
        with pytest.raises(DebugFlowError):
            session.run(-1, stimulus=lambda c: {})

    def test_reset_clears_state(self, session):
        session.observe(session.observable_signals[:1])
        session.run(5, stimulus=lambda c: {"a": 1})
        session.reset()
        assert session.trace.cycle == 0


class TestStrategies:
    def test_round_robin_covers_everything(self, offline):
        design = offline.instrumented
        seen: set[str] = set()
        for sel in RoundRobinSweep(design):
            design.selection_for(sel)  # must be collision-free
            seen.update(sel)
        assert seen == {
            design.network.node_name(t) for t in design.taps
        }

    def test_manual_validates(self, offline):
        design = offline.instrumented
        good = [[design.network.node_name(design.taps[0])]]
        assert list(ManualSelection(design, good)) == good
        g0 = design.groups[0]
        if len(g0.leaves) >= 2:
            bad = [[design.network.node_name(l) for l in g0.leaves[:2]]]
            with pytest.raises(DebugFlowError):
                ManualSelection(design, bad)

    def test_cone_selection_prioritizes_near(self, offline):
        design = offline.instrumented
        po = offline.source.po_names[0]
        rounds = list(ConeOfInfluenceSelection(design, po))
        assert rounds, "cone strategy yielded nothing"
        for sel in rounds:
            design.selection_for(sel)
        first = set(rounds[0])
        # the failing signal's own driver region comes first
        cone = design.network.transitive_fanin(
            [design.network.require(po)]
        )
        assert any(design.network.require(s) in cone for s in first)

    def test_cone_unknown_signal(self, offline):
        with pytest.raises(DebugFlowError):
            ConeOfInfluenceSelection(offline.instrumented, "ghost")

    def test_cone_max_rounds(self, offline):
        design = offline.instrumented
        po = offline.source.po_names[0]
        limited = list(
            ConeOfInfluenceSelection(design, po, max_rounds=1)
        )
        assert len(limited) <= 1
