"""Boolean functions of parameters."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.boolfunc import (
    BoolExpr,
    bf_and,
    bf_conj,
    bf_const,
    bf_mux,
    bf_not,
    bf_or,
    bf_var,
    bf_xor,
    mutually_exclusive,
)


def exprs(depth: int = 3, n_vars: int = 6):
    base = st.one_of(
        st.integers(0, n_vars - 1).map(bf_var),
        st.sampled_from([bf_const(0), bf_const(1)]),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda ab: bf_and(*ab)),
            st.tuples(children, children).map(lambda ab: bf_or(*ab)),
            st.tuples(children, children).map(lambda ab: bf_xor(*ab)),
            children.map(bf_not),
        )

    return st.recursive(base, extend, max_leaves=8)


def brute_equal(a: BoolExpr, b: BoolExpr, n_vars: int = 6) -> bool:
    vec = np.zeros(n_vars, dtype=np.uint8)
    for point in range(1 << n_vars):
        for i in range(n_vars):
            vec[i] = (point >> i) & 1
        if a.evaluate(vec) != b.evaluate(vec):
            return False
    return True


class TestConstructors:
    def test_const_folding(self):
        assert (bf_var(0) & bf_const(0)).is_const()
        assert (bf_var(0) | bf_const(1)).is_const()
        assert bf_not(bf_const(1)).value == 0

    def test_double_negation(self):
        assert bf_not(bf_not(bf_var(2))) is bf_var(2)

    def test_interning(self):
        assert bf_var(3) is bf_var(3)
        assert bf_and(bf_var(0), bf_var(1)) is bf_and(bf_var(0), bf_var(1))

    def test_contradiction_collapses(self):
        assert bf_and(bf_var(0), bf_not(bf_var(0))).value == 0
        assert bf_or(bf_var(0), bf_not(bf_var(0))).value == 1

    def test_xor_cancellation(self):
        assert bf_xor(bf_var(1), bf_var(1)).is_const()
        e = bf_xor(bf_var(1), bf_const(1))
        assert e.op == "not"

    def test_negative_var_rejected(self):
        with pytest.raises(Exception):
            bf_var(-1)

    def test_conj(self):
        e = bf_conj([(0, 1), (2, 0)])
        assert e.evaluate({0: 1, 2: 0}) == 1
        assert e.evaluate({0: 1, 2: 1}) == 0
        assert bf_conj([]).value == 1


class TestEvaluation:
    @given(exprs(), st.integers(0, 63))
    def test_eval_matches_semantics(self, e, point):
        vec = np.array([(point >> i) & 1 for i in range(6)], dtype=np.uint8)

        def semantics(x: BoolExpr) -> int:
            if x.op == "const":
                return x.value
            if x.op == "var":
                return int(vec[x.var])
            if x.op == "not":
                return 1 - semantics(x.args[0])
            vals = [semantics(a) for a in x.args]
            if x.op == "and":
                return int(all(vals))
            if x.op == "or":
                return int(any(vals))
            acc = 0
            for v in vals:
                acc ^= v
            return acc

        assert e.evaluate(vec) == semantics(e)

    @given(exprs())
    def test_support_sound(self, e):
        # flipping a variable outside the support never changes the result
        vec = np.zeros(6, dtype=np.uint8)
        base = e.evaluate(vec)
        for i in range(6):
            if i in e.support():
                continue
            vec2 = vec.copy()
            vec2[i] = 1
            assert e.evaluate(vec2) == base

    def test_n_nodes_counts_shared_once(self):
        # and-flattening inlines `shared` into two flat 3-ary ANDs:
        # or + and(p0,p1,p2) + and(p0,p1,p3) + 4 shared var nodes = 7
        shared = bf_and(bf_var(0), bf_var(1))
        e = bf_or(bf_and(shared, bf_var(2)), bf_and(shared, bf_var(3)))
        assert e.n_nodes() == 7

    def test_mux(self):
        m = bf_mux(bf_var(2), bf_var(0), bf_var(1))
        assert m.evaluate({0: 1, 1: 0, 2: 0}) == 1
        assert m.evaluate({0: 1, 1: 0, 2: 1}) == 0


class TestMutualExclusivity:
    def test_conflicting_conjunctions(self):
        a = bf_conj([(0, 1), (1, 0)])
        b = bf_conj([(0, 0)])
        assert mutually_exclusive(a, b)

    def test_compatible_conjunctions(self):
        a = bf_conj([(0, 1)])
        b = bf_conj([(1, 1)])
        assert not mutually_exclusive(a, b)

    def test_const_false_excludes_everything(self):
        assert mutually_exclusive(bf_const(0), bf_var(3))

    def test_general_expressions(self):
        a = bf_xor(bf_var(0), bf_var(1))      # true iff v0 != v1
        b = bf_and(bf_var(0), bf_var(1))      # true iff both
        assert mutually_exclusive(a, b)

    def test_overlapping_general(self):
        a = bf_or(bf_var(0), bf_var(1))
        b = bf_var(0)
        assert not mutually_exclusive(a, b)

    @given(exprs(), exprs())
    def test_exclusivity_matches_brute_force(self, a, b):
        expected = True
        vec = np.zeros(6, dtype=np.uint8)
        for point in range(64):
            for i in range(6):
                vec[i] = (point >> i) & 1
            if a.evaluate(vec) and b.evaluate(vec):
                expected = False
                break
        assert mutually_exclusive(a, b) == expected
