#!/usr/bin/env python
"""Bug hunt: localize an injected RTL bug with the online debug loop.

Scenario from the paper's introduction: a functional error slipped into
the RTL; the emulated design misbehaves at some output, and the engineer
must find *which internal signal* first diverges — but only a handful of
signals are observable per run.  Conventionally every new signal set
costs a recompilation; with parameterized reconfiguration it costs
microseconds.

The script:

1. generates a golden design and a buggy copy (one mutated gate);
2. runs the offline stage on the buggy design;
3. drives identical random stimulus through a golden reference simulation
   and the debug session, sweeping the observable signals with the
   cone-of-influence strategy until the culprit signal is found;
4. reports the bug site and what the hunt would have cost conventionally.

This script walks ONE bug interactively.  For batch runs over many
(design, bug) pairs — with the offline stage cached per design and the
online sessions fanned out over worker processes — use the campaign API
(:mod:`repro.campaign`, ``python -m repro.campaign``, and
``examples/campaign_demo.py``), which drives this same localization loop
via :func:`repro.campaign.localize_divergence`.

Run:  python examples/bug_hunt.py
"""

from __future__ import annotations

import os
import sys

# allow running straight from a source checkout, from any working directory
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro import (
    DebugSession,
    RecompileModel,
    generate_circuit,
    get_spec,
    inject_bug,
    run_generic_stage,
)
from repro.campaign import GoldenOracle
from repro.campaign.localize import observable_frontier, untapped_region
from repro.workloads import stimulus_script as _campaign_stimulus
from repro.workloads.scenarios import po_trace


def main() -> None:
    rng = np.random.default_rng(2016)
    golden = generate_circuit(get_spec("stereov."))
    buggy = golden.copy()
    buggy.name = "stereov_buggy"

    # inject until the bug is observable at an output within the horizon
    bug = None
    for _attempt in range(50):
        trial = golden.copy()
        candidate = inject_bug(trial, rng)
        if _mismatch_cycle(golden, trial, horizon=200) is not None:
            buggy, bug = trial, candidate
            break
    assert bug is not None, "could not produce an observable failure"
    print(f"injected bug: {bug.description} (hidden from the debugger)")

    fail_cycle = _mismatch_cycle(golden, buggy, horizon=200)
    failing_po = _failing_po(golden, buggy, fail_cycle)
    print(f"failure first visible at PO {failing_po!r}, cycle {fail_cycle}")

    # ---- offline stage on the buggy design (what we'd have on the bench)
    offline = run_generic_stage(buggy)
    session = DebugSession(offline)
    design = offline.instrumented
    golden_sim = GoldenOracle(golden)
    stim = _stimulus_script(golden, fail_cycle + 1, seed=7)

    def diverges(signals: list[str]) -> dict[str, bool]:
        """Observe signals (in collision-free batches) vs the golden model."""
        out: dict[str, bool] = {}
        remaining = [
            s
            for s in signals
            if design.network.find(s) is not None
            and design.network.find(s) in set(design.taps)
        ]
        while remaining:
            batch: list[str] = []
            used: set[int] = set()
            rest: list[str] = []
            for s in remaining:
                g = design.group_of(design.network.require(s))
                if g.index in used:
                    rest.append(s)
                else:
                    used.add(g.index)
                    batch.append(s)
            session.observe(batch)
            session.reset()
            session.run(fail_cycle + 1, stimulus=lambda c: stim[c])
            waves = session.waveforms()
            expected = golden_sim.signals(stim, batch)
            for s in batch:
                exp = expected.get(s)
                got = waves.get(s)
                out[s] = bool(
                    exp is not None
                    and got is not None
                    and not np.array_equal(got, exp[: len(got)])
                )
            remaining = rest
        return out

    # walk the divergence backward: a signal whose *observable* fan-in
    # frontier (the nearest tapped signals, crossing gates the mapper
    # absorbed) fully matches the golden model is the bug region's root
    # (the same walk repro.campaign.localize_divergence automates)
    net_b = design.network
    tapped = set(design.taps)

    suspect = failing_po
    turns_before = len(session.turns)
    visited: set[str] = set()
    while True:
        visited.add(suspect)
        frontier = [
            s
            for s in observable_frontier(net_b, tapped, net_b.require(suspect))
            if s not in visited
        ]
        verdicts = diverges(frontier)
        bad = [s for s, d in verdicts.items() if d]
        if not bad:
            break
        suspect = bad[0]
    turns = len(session.turns) - turns_before

    # Observability granularity is the mapped netlist: gates absorbed into
    # the suspect's LUT cone are not individually visible, so the hunt
    # localizes to the suspect plus its un-tapped fan-in region.
    region = untapped_region(net_b, tapped, suspect)

    print(
        f"\nlocalized after {turns} debugging turns: signal {suspect!r} "
        f"(region of {len(region)} gates)"
    )
    print(f"ground truth: the bug was injected at {bug.node_name!r}")
    assert bug.node_name in region, (
        f"bug {bug.node_name!r} not inside the localized region"
    )

    # cost comparison
    model = RecompileModel()
    conv_s = turns * model.compile_time_s(offline.initial.n_luts)
    ours_s = session.total_modeled_overhead_s()
    print(
        f"\nconventional flow: {turns} recompiles ≈ {conv_s:.0f} s; "
        f"parameterized flow: {ours_s * 1e6:.1f} us of specialization"
    )


def _stimulus_script(net, n_cycles: int, seed: int) -> list[dict[str, int]]:
    return _campaign_stimulus(net, n_cycles, seed)


def _run_pos(net, stim) -> list[dict[str, int]]:
    return po_trace(net, stim)


def _mismatch_cycle(golden, buggy, horizon: int) -> int | None:
    stim = _stimulus_script(golden, horizon, seed=7)
    a = _run_pos(golden, stim)
    b = _run_pos(buggy, stim)
    for cyc, (ra, rb) in enumerate(zip(a, b)):
        if ra != rb:
            return cyc
    return None


def _failing_po(golden, buggy, cycle: int) -> str:
    stim = _stimulus_script(golden, cycle + 1, seed=7)
    a = _run_pos(golden, stim)[cycle]
    b = _run_pos(buggy, stim)[cycle]
    for po in a:
        if a[po] != b[po]:
            return po
    raise RuntimeError("no failing PO at the mismatch cycle")


if __name__ == "__main__":
    main()
