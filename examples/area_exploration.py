#!/usr/bin/env python
"""Area exploration: regenerate the paper's Table I comparison locally.

Sweeps the benchmark suite through all four flows (Initial mapping,
SimpleMap and ABC conventional instrumentation, the proposed TCONMap) and
prints the measured table next to the published one.  Pass benchmark
names to restrict the set (the full suite takes a few minutes):

    python examples/area_exploration.py stereov. diffeq2
"""

from __future__ import annotations

import os
import sys

# allow running straight from a source checkout, from any working directory
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.analysis import run_table1, run_table2
from repro.workloads import get_spec, paper_suite


def main(argv: list[str]) -> None:
    if argv:
        specs = [get_spec(name) for name in argv]
    else:
        specs = paper_suite(small_only=True)
        print(
            "(small benchmarks only — pass benchmark names or 'all' for more)\n"
        )
    if argv == ["all"]:
        specs = paper_suite()
    print(run_table1(specs))
    print()
    print(run_table2(specs))


if __name__ == "__main__":
    main(sys.argv[1:])
