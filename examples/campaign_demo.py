#!/usr/bin/env python
"""Campaign demo: localize a batch of bugs with one shared offline stage.

Where ``bug_hunt.py`` walks a single injected bug interactively, this demo
runs a whole *debug campaign*: several emulation-level stuck-at faults plus
a netlist mutation on the paper's stereovision stand-in, orchestrated by
:mod:`repro.campaign`.  The point to watch is the amortization column —
every stuck-at scenario after the first reuses the cached offline artifact
(`Hit = y`, `Offline ≈ 0`), because parameterized reconfiguration means a
new bug hypothesis costs a microsecond-scale respecialization, never a
recompile.

The same campaign is available from the command line::

    python -m repro.campaign --designs stereov. --per-design 4 --kind mixed

Run:  python examples/campaign_demo.py
"""

import os
import sys

# allow running straight from a source checkout, from any working directory
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.campaign import ArtifactStore, CampaignConfig, resolve_offline, run_campaign
from repro.workloads import (
    generate_circuit,
    get_spec,
    mutation_scenarios,
    stuck_at_scenarios,
)


def main() -> None:
    # a batch of (design, bug) pairs: four transient stuck-at faults that
    # share one implemented design, plus one RTL-style netlist mutation
    # (a different design revision, so it pays its own generic stage).
    # The stage-granular store caches each compile stage under its own
    # content key — add cache_dir=... to persist across runs, and note
    # that a later campaign with a changed flow config would rebuild only
    # the invalidated stages, not the whole artifact.
    store = ArtifactStore()
    offline, _ = resolve_offline(
        generate_circuit(get_spec("stereov.")), cache=store
    )
    scenarios = stuck_at_scenarios("stereov.", 4, horizon=64, offline=offline)
    scenarios += mutation_scenarios("stereov.", 1, horizon=64)
    print(f"campaign of {len(scenarios)} scenarios:")
    for sc in scenarios:
        print(f"  {sc.name:<28s} {sc.description}")

    report = run_campaign(
        scenarios, config=CampaignConfig(workers=1), cache=store
    )

    print()
    print(report.render())
    print()
    builds = store.stats.for_stage("tcon-map").misses
    print(
        f"generic stage ran {builds}x (once per design revision) for "
        f"{len(report.results)} scenarios — the offline cost is paid per "
        "design, the per-bug cost is the online loop only; the cache "
        "lines above break reuse down per compile stage"
    )


if __name__ == "__main__":
    main()
