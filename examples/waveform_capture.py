#!/usr/bin/env python
"""Waveform capture: trace internal signals to a VCD file.

Runs the debug session with a trigger condition, captures the trace-buffer
window around the trigger and writes a GTKWave-compatible VCD — the
artifact an engineer actually inspects.

Run:  python examples/waveform_capture.py [out.vcd]
"""

from __future__ import annotations

import os
import sys

# allow running straight from a source checkout, from any working directory
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro import DebugSession, generate_circuit, get_spec, run_generic_stage
from repro.emu.vcd import write_vcd


def main(argv: list[str]) -> None:
    out_path = argv[0] if argv else "debug_capture.vcd"

    net = generate_circuit(get_spec("diffeq2"))
    offline = run_generic_stage(net)
    session = DebugSession(offline, trace_depth=128)

    signals = session.observable_signals[:6]
    hookup = session.observe(signals)
    print("observing:", hookup)

    rng = np.random.default_rng(11)
    pi_names = [net.node_name(p) for p in net.pis]

    def stimulus(cycle: int) -> dict[str, int]:
        return {n: int(rng.integers(0, 2)) for n in pi_names}

    # trigger when the first observed buffer input goes high
    first_buffer = offline.instrumented.groups[0].po_name

    def trigger(cycle: int, buffers: dict[str, int]) -> bool:
        return buffers.get(first_buffer, 0) == 1

    session.run(400, stimulus=stimulus, trigger=trigger)
    waves = session.waveforms()
    n = min(len(w) for w in waves.values())
    print(
        f"captured {n} samples around trigger at cycle "
        f"{session.trace.triggered_at}"
    )
    write_vcd(waves, out_path)
    print(f"wrote {out_path} — open with GTKWave")


if __name__ == "__main__":
    main(sys.argv[1:])
