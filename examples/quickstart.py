#!/usr/bin/env python
"""Quickstart: the whole debug flow on a small circuit in ~40 lines.

Offline (once): synthesize → parameterize signals → TCON-map → PConf.
Online (per debugging turn): pick signals → SCG respecializes → run →
read waveforms.  No recompilation anywhere.

Run:  python examples/quickstart.py
"""

import os
import sys

# allow running straight from a source checkout, from any working directory
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import DebugSession, generate_circuit, get_spec, run_generic_stage

def main() -> None:
    # a synthetic stand-in for the paper's stereovision benchmark
    net = generate_circuit(get_spec("stereov."))
    print(f"design: {net}")

    # ---- offline "generic" stage: runs once -----------------------------
    offline = run_generic_stage(net)
    print("offline:", offline.summary())
    print("  flow phases:")
    for line in offline.timers.report().splitlines():
        print("   ", line)

    # ---- online stage: each turn costs microseconds, not a recompile ----
    session = DebugSession(offline)
    signals = session.observable_signals[:4]
    routed = session.observe(signals)
    print(f"\nobserving {signals}")
    print(f"buffer hookup: {routed}")

    # drive a simple walking-ones stimulus for 64 cycles
    pi_names = [net.node_name(p) for p in net.pis]
    session.run(
        64,
        stimulus=lambda cyc: {pi_names[cyc % len(pi_names)]: 1},
    )
    for sig, wave in session.waveforms().items():
        bits = "".join(str(int(b)) for b in wave[-32:])
        print(f"  {sig:>10s} ...{bits}")

    # switch the observed set — this is the paper's headline operation
    new_signals = session.observable_signals[4:8]
    session.observe(new_signals)
    session.run(64, stimulus=lambda cyc: {pi_names[0]: cyc & 1})
    print(f"\nswitched to {new_signals} without recompilation")
    report = session.amortization_report()
    print(
        f"modeled specialization overhead: "
        f"{report['modeled_overhead_s'] * 1e6:.1f} us over "
        f"{int(report['specializations'])} turns "
        f"(break-even {int(report['break_even_turns_per_specialization'])} "
        f"debug turns each)"
    )


if __name__ == "__main__":
    main()
