#!/usr/bin/env python
"""Regenerate every paper artifact without pytest.

Runs the five experiment drivers (Tables I/II, Fig. 7, §V-C.1, §V-C.2)
and writes the results under ``results/``.  With MPI available, pass
``--parallel`` to distribute the per-benchmark runs with mpi4py's
``MPIPoolExecutor`` (the drivers are embarrassingly parallel over
benchmarks; see DESIGN.md §7).

Usage::

    python tools/run_experiments.py            # full suite (several minutes)
    python tools/run_experiments.py --small    # small benchmarks only
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import (
    run_compile_time,
    run_fig7,
    run_runtime_overhead,
    run_table1,
    run_table2,
    save_result,
)
from repro.workloads import paper_suite


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--small", action="store_true", help="small benchmarks only")
    ap.add_argument(
        "--parallel",
        action="store_true",
        help="distribute benchmarks with mpi4py.futures (if installed)",
    )
    args = ap.parse_args(argv)

    map_fn = map
    if args.parallel:
        try:
            from mpi4py.futures import MPIPoolExecutor  # type: ignore

            pool = MPIPoolExecutor()
            map_fn = pool.map
        except ImportError:
            print("mpi4py not available; running serially", file=sys.stderr)

    specs = paper_suite(small_only=args.small)
    jobs = [
        ("table1_area", lambda: run_table1(specs, map_fn=map_fn)),
        ("table2_depth", lambda: run_table2(specs, map_fn=map_fn)),
        ("fig7_area_chart", lambda: run_fig7(specs, map_fn=map_fn)),
        ("compile_time", lambda: run_compile_time(
            [s for s in specs if s.n_gates < 300] or specs[:1]
        )),
        ("runtime_overhead", lambda: run_runtime_overhead(
            specs[3] if len(specs) > 3 else specs[-1]
        )),
    ]
    for name, job in jobs:
        t0 = time.perf_counter()
        text = job()
        path = save_result(name, text)
        print(f"[{time.perf_counter() - t0:7.1f}s] {path}")
        print(text)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
