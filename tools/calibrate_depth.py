#!/usr/bin/env python
"""Re-derive the per-benchmark ``gate_depth_target`` calibration.

For each benchmark of the paper suite, binary-search the gate-level depth
of the synthetic generator until the ABC-style K=6 mapping of the generated
circuit matches the paper's Golden depth (Table II).  The resulting values
are hard-coded in :mod:`repro.workloads.suites`; run this script after any
change to the generator or the mapper to refresh them.

Usage::

    python tools/calibrate_depth.py
"""

from __future__ import annotations

import dataclasses

from repro.mapping import AbcMap
from repro.workloads import paper_suite
from repro.workloads.generator import generate_circuit


def mapped_depth(spec, gate_depth: int) -> int:
    s = dataclasses.replace(spec, gate_depth_target=gate_depth)
    return AbcMap().map(generate_circuit(s)).depth()


def calibrate(spec) -> tuple[int, int]:
    golden = spec.golden_depth
    lo, hi = max(3, int(golden * 1.1)), int(golden * 2.8) + 2
    best, best_d = lo, None
    while lo <= hi:
        mid = (lo + hi) // 2
        d = mapped_depth(spec, mid)
        if best_d is None or abs(d - golden) < abs(best_d - golden):
            best, best_d = mid, d
        if d < golden:
            lo = mid + 1
        elif d > golden:
            hi = mid - 1
        else:
            break
    assert best_d is not None
    return best, best_d


def main() -> None:
    print(f"{'benchmark':12s} {'golden':>6s} {'gate_depth':>10s} {'mapped':>6s}")
    for spec in paper_suite():
        gate_depth, mapped = calibrate(spec)
        flag = "" if mapped == spec.golden_depth else "  (off by {})".format(
            mapped - spec.golden_depth
        )
        print(
            f"{spec.name:12s} {spec.golden_depth:6d} {gate_depth:10d} "
            f"{mapped:6d}{flag}"
        )


if __name__ == "__main__":
    main()
