#!/usr/bin/env python
"""Aggregate the machine-readable benchmark records into one report.

Every benchmark under ``benchmarks/`` persists its headline numbers as
``results/BENCH_<name>.json`` (see ``benchmarks/conftest.py``); CI's
bench-smoke job uploads those files as artifacts and enforces regression
floors on individual fields.  This tool folds them into a single table —
the perf trajectory at a glance, for humans and for PR descriptions.

Usage::

    python tools/bench_report.py                  # text table
    python tools/bench_report.py --markdown       # GitHub-flavored table
    python tools/bench_report.py --check          # exit 1 if any recorded
                                                  # floor field is violated

``--check`` compares every ``<metric>`` against its ``<metric>_floor``
companion when one was recorded (e.g. ``flat_speedup`` vs
``flat_floor``), so a stale results/ tree fails loudly instead of
shipping a regressed artifact.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys


def load_records(results_dir: str) -> dict[str, dict]:
    records = {}
    for path in sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json"))):
        name = os.path.basename(path)[len("BENCH_") : -len(".json")]
        try:
            with open(path, encoding="utf-8") as fh:
                records[name] = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"warning: skipping unreadable {path}: {exc}", file=sys.stderr)
    return records


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def floor_violations(records: dict[str, dict]) -> list[str]:
    """``<metric>`` fields below their recorded ``<prefix>_floor``.

    A floor field named ``x_floor`` (or ``floor``) applies to the metric
    sharing its prefix whose name ends in ``_speedup`` — the convention
    every bench file follows (``flat_speedup``/``flat_floor``,
    ``speedup``/``floor``, ...).
    """
    bad = []
    for bench, rec in records.items():
        for key, floor in rec.items():
            if not key.endswith("floor") or not isinstance(floor, (int, float)):
                continue
            prefix = key[: -len("floor")]
            for metric in (f"{prefix}speedup", "speedup"):
                got = rec.get(metric)
                if isinstance(got, (int, float)) and not isinstance(got, bool):
                    if got < floor:
                        bad.append(
                            f"{bench}.{metric} = {got:.2f} below its "
                            f"recorded floor {floor:.2f}"
                        )
                    break
    return bad


def render(records: dict[str, dict], markdown: bool) -> str:
    lines = []
    if markdown:
        lines += ["| bench | metric | value |", "| --- | --- | --- |"]
        for bench, rec in records.items():
            for key in sorted(rec):
                lines.append(f"| {bench} | {key} | {_fmt(rec[key])} |")
    else:
        width = max(
            (len(k) for rec in records.values() for k in rec), default=10
        )
        for bench, rec in records.items():
            lines.append(f"{bench}")
            for key in sorted(rec):
                lines.append(f"  {key:<{width}}  {_fmt(rec[key])}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        default=os.path.join(os.path.dirname(__file__), "..", "results"),
        help="directory holding BENCH_*.json records (default: results/)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit a GitHub-flavored table"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when a metric is below its recorded floor",
    )
    args = parser.parse_args(argv)
    records = load_records(os.path.abspath(args.results_dir))
    if not records:
        print("no BENCH_*.json records found", file=sys.stderr)
        return 1
    print(render(records, args.markdown))
    if args.check:
        bad = floor_violations(records)
        for line in bad:
            print(f"FLOOR VIOLATION: {line}", file=sys.stderr)
        return 1 if bad else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
