"""Experiment T2 — Table II: logic depth after adding debug infrastructure.

Shape: the proposed flow never deepens the user logic relative to the
golden (initial) mapping, while the conventional mappers may add a level.
"""

from __future__ import annotations

from benchmarks.conftest import emit, emit_json
from repro.analysis import run_benchmark_columns, run_table2
from repro.workloads import paper_suite


def test_table2_depth(benchmark, results_dir):
    text = benchmark.pedantic(
        lambda: run_table2(), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(results_dir, "table2_depth", text)

    depths = {}
    for spec in paper_suite():
        cols = run_benchmark_columns(spec)
        golden = cols.initial.depth_to(cols.user_sinks)
        assert golden == spec.golden_depth, (
            f"{spec.name}: golden depth {golden} != paper {spec.golden_depth}"
        )
        prop = cols.proposed.depth_to(cols.user_sinks)
        assert prop <= golden, f"{spec.name}: proposed deepened user logic"
        assert cols.sm.user_depth <= golden + 1
        assert cols.abc.user_depth <= golden + 1
        depths[spec.name] = {"golden": golden, "proposed": prop}
    emit_json(results_dir, "table2_depth", {"user_depths": depths})
