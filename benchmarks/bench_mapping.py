"""Generic-prefix mapping throughput (PR 10).

The offline critical path's last serial stretch was the priority-cut
mapper: after PR 5/8 rewrote and parallelized pack/place/route, the
generic prefix (initial-map + tcon-map) dominated cold-build wall clock.
This benchmark pins the two PR 10 layers:

* **flat bitset cut engine** — :class:`~repro.mapping.abc_map.AbcMap` on
  the rewritten engine (local-domain bitmask merges, stamp-memoized
  costs, deferred area flow) against the preserved set-based reference
  (:class:`~repro.mapping.ref.RefAbcMap`), best-of-``REPS`` per design
  over the full paper suite.  Acceptance: **≥2×** aggregate
  (``REPRO_MAPPING_FLOOR``), with per-design depth equality and
  suite-aggregate LUT counts within 1%.
* **level-wave parallel passes** — byte-identical mappings at 4 workers
  on a real process pool (asserted unconditionally).  Wall clock is
  recorded for the trajectory but not floored: wave payloads ship whole
  fan-in cut lists, so the break-even point depends on design size and
  host cores (see ``ARCHITECTURE.md``).

Mapping-equality and cut-algebra property tests live in
``tests/test_mapping_parallel.py``; this file owns the perf floors.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

from benchmarks.conftest import emit, emit_json
from repro.mapping import AbcMap
from repro.mapping.ref import RefAbcMap
from repro.util.intra import IntraPool
from repro.workloads import generate_circuit, paper_suite

MAPPING_FLOOR = float(os.environ.get("REPRO_MAPPING_FLOOR", "2.0"))
#: Best-of-N timing per (design, engine): shared runners jitter ±10%,
#: and the minimum over a few reps is the stable statistic.
REPS = int(os.environ.get("REPRO_MAPPING_REPS", "3"))


def _best_of(fn, reps=REPS):
    best, result = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best, result = dt, out
    return best, result


def test_flat_engine_speedup(results_dir):
    nets = {spec.name: generate_circuit(spec) for spec in paper_suite()}
    # interleave the engines within each rep: shared-runner load drifts
    # on the seconds scale, so timing A's reps back-to-back and then B's
    # would let a load spike land entirely on one engine; adjacent
    # measurements + best-of-reps cancels the drift
    t_ref = {name: float("inf") for name in nets}
    t_new = dict(t_ref)
    maps_ref = {}
    maps_new = {}
    for _ in range(REPS):
        for name, net in nets.items():
            t0 = time.perf_counter()
            m = RefAbcMap(k=6, cut_limit=8, area_rounds=2).map(net)
            dt = time.perf_counter() - t0
            if dt < t_ref[name]:
                t_ref[name], maps_ref[name] = dt, m
            t0 = time.perf_counter()
            m = AbcMap(k=6, cut_limit=8, area_rounds=2).map(net)
            dt = time.perf_counter() - t0
            if dt < t_new[name]:
                t_new[name], maps_new[name] = dt, m
    rows = []
    total_ref = total_new = 0.0
    luts_ref = luts_new = 0
    for name in nets:
        m_new, m_ref = maps_new[name], maps_ref[name]
        assert m_new.depth() == m_ref.depth(), f"{name}: depth changed"
        total_ref += t_ref[name]
        total_new += t_new[name]
        luts_ref += len(m_ref.luts)
        luts_new += len(m_new.luts)
        rows.append(
            f"{name:<10} ref {t_ref[name] * 1e3:7.1f} ms  "
            f"flat {t_new[name] * 1e3:7.1f} ms "
            f" {t_ref[name] / t_new[name]:5.2f}x  "
            f"luts {len(m_ref.luts)}->{len(m_new.luts)}"
            f"  depth {m_new.depth()}"
        )
    speedup = total_ref / total_new
    lut_drift = (luts_new - luts_ref) / luts_ref
    text = (
        "Priority-cut mapping: flat bitset engine vs set-based reference\n"
        f"(best of {REPS} reps per design, AbcMap k=6 limit=8 rounds=2)\n\n"
        + "\n".join(rows)
        + f"\n\naggregate speedup: {speedup:.2f}x "
        f"(floor {MAPPING_FLOOR:.1f}x)\n"
        f"suite LUTs: {luts_ref} -> {luts_new} ({100 * lut_drift:+.2f}%)"
    )
    emit(results_dir, "mapping_flat_speedup", text)
    emit_json(
        results_dir,
        "mapping",
        {
            "flat_speedup": speedup,
            "flat_floor": MAPPING_FLOOR,
            "reps": REPS,
            "suite_luts_ref": luts_ref,
            "suite_luts_flat": luts_new,
            "suite_lut_drift": lut_drift,
        },
    )
    assert abs(lut_drift) <= 0.01, f"suite LUT count drifted {lut_drift:+.2%}"
    assert speedup >= MAPPING_FLOOR, (
        f"flat engine speedup {speedup:.2f}x below {MAPPING_FLOOR:.1f}x floor"
    )


def _fingerprint(res):
    return (
        tuple(
            (nid, l.leaves, l.func.bits, l.param_leaves)
            for nid, l in sorted(res.luts.items())
        ),
        res.depth(),
    )


def test_level_wave_identity_and_walltime(results_dir):
    """Level-wave mapping on a real pool: identical output, recorded time."""
    spec = max(paper_suite(), key=lambda s: s.n_gates)
    net = generate_circuit(spec)
    t_serial, base = _best_of(
        lambda: AbcMap(k=6, cut_limit=8, area_rounds=2).map(net), reps=1
    )
    ex = ProcessPoolExecutor(max_workers=4)
    try:
        pool = IntraPool(4, acquire=lambda: ex)
        t_waves, par = _best_of(
            lambda: AbcMap(
                k=6, cut_limit=8, area_rounds=2, intra=pool
            ).map(net),
            reps=1,
        )
    finally:
        ex.shutdown()
    assert _fingerprint(par) == _fingerprint(base)
    cores = os.cpu_count() or 1
    emit(
        results_dir,
        "mapping_wave_parallel",
        f"Level-wave mapping on {spec.name} (4 workers, {cores} cores):\n"
        f"serial {t_serial:.2f}s  waves {t_waves:.2f}s "
        f"({t_serial / t_waves:.2f}x) — byte-identical mapping",
    )
    emit_json(
        results_dir,
        "mapping",
        {
            "wave_serial_s": t_serial,
            "wave_parallel_s": t_waves,
            "wave_workers": 4,
            "host_cores": cores,
            "wave_identical": True,
        },
    )
