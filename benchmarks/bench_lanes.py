"""Experiment B2 — lane-parallel online engine throughput.

The bit-parallel simulator evaluates 64 lanes per ``uint64`` word, but the
historical online loop burned one whole packed emulation per scenario —
1/64th of the machine it was already paying for.  This benchmark measures
what packing buys at campaign scale: a 32-scenario stuck-at campaign
(one shared offline artifact, the paper's amortization sweet spot) run

* **serially** — ``lane_width=1``, one :class:`~repro.core.debug.
  DebugSession` per scenario (the PR 1/PR 2 behavior), vs.
* **lane-batched** — ``lane_width=64``, all scenarios bound to lanes of
  one :class:`~repro.engine.LaneEngine`: one packed golden pass, one
  packed detection run, and a batched frontier walk advancing every
  still-active lane per observe+replay turn.

The headline assertion is floored against the **interpreted serial
engine** — the historical baseline the lane engine was introduced
against.  PR 4's compiled kernels made the serial path itself ~3× faster,
which left the old compiled-vs-compiled 4× floor nearly touching the
measured 4.99× packing speedup; re-basing on the interpreted baseline
(PR 4 follow-up) keeps the floor meaningful: **≥8× online-phase
speedup**, with **byte-identical scenario outcomes** at every width and
engine.  The compiled-serial packing speedup is still measured and
reported (no floor).  The offline cache is pre-warmed for all runs so
the comparison isolates the online phase.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import emit, emit_json
from repro.analysis.reporting import lane_occupancy
from repro.campaign import CampaignConfig, OfflineCache, run_campaign
from repro.workloads import campaign_spec, stuck_at_scenarios

SPEC = campaign_spec("lanes-bench", n_gates=120, depth=8, n_pis=20, n_pos=10)
N_SCENARIOS = 32
HORIZON = 48


@pytest.fixture(scope="module")
def scenarios():
    return stuck_at_scenarios(SPEC, N_SCENARIOS, horizon=HORIZON)


#: Floor against the interpreted serial baseline (the pre-lane,
#: pre-kernel historical path).  The measured number sits well above;
#: CI runners can soften it via the environment like bench_kernels.
BASELINE_FLOOR = float(os.environ.get("REPRO_LANE_BASELINE_FLOOR", "8.0"))


@pytest.mark.slow
def test_lane_engine_speedup(scenarios, results_dir):
    cache = OfflineCache()
    # pre-warm the offline artifact so every run measures the online phase
    run_campaign(scenarios[:1], config=CampaignConfig(lane_width=1), cache=cache)

    baseline = run_campaign(
        scenarios,
        config=CampaignConfig(lane_width=1, interpreted=True),
        cache=cache,
    )
    serial = run_campaign(
        scenarios, config=CampaignConfig(lane_width=1), cache=cache
    )
    lanes = run_campaign(
        scenarios, config=CampaignConfig(lane_width=64), cache=cache
    )

    assert lanes.outcomes() == serial.outcomes(), "lane packing changed results"
    assert lanes.outcomes() == baseline.outcomes(), (
        "compiled engine diverged from the interpreted baseline"
    )
    statuses = {r.status for r in lanes.results}
    assert "error" not in statuses

    speedup = baseline.online_total_s / lanes.online_total_s
    packing_speedup = serial.online_total_s / lanes.online_total_s
    wall_speedup = baseline.wall_s / lanes.wall_s
    occ = lane_occupancy(lanes.lane_batches)
    text = (
        "LANE-PARALLEL ONLINE ENGINE (measured)\n"
        f"{N_SCENARIOS}-scenario stuck-at campaign on {SPEC.name} "
        f"({SPEC.n_gates} gates), shared offline artifact (pre-warmed "
        "cache), horizon "
        f"{HORIZON} cycles\n\n"
        f"interpreted serial (historical):   {baseline.online_total_s:8.2f} s "
        f"online ({baseline.wall_s:.2f} s wall)\n"
        f"compiled serial (lane_width=1):    {serial.online_total_s:8.2f} s "
        f"online ({serial.wall_s:.2f} s wall)\n"
        f"lane-batched    (lane_width=64):   {lanes.online_total_s:8.2f} s "
        f"online ({lanes.wall_s:.2f} s wall)\n\n"
        f"online-phase speedup vs interpreted baseline: {speedup:.2f}x "
        f"(floor: {BASELINE_FLOOR:g}x, wall: {wall_speedup:.2f}x)\n"
        f"lane-packing speedup vs compiled serial:      "
        f"{packing_speedup:.2f}x (reference)\n"
        f"lane batches: {lanes.lane_batches} — mean {occ['mean_lanes']:.1f} "
        f"lanes/word, {100 * occ['occupancy']:.0f}% word occupancy\n"
        "outcomes: byte-identical across all three paths\n\n"
        "lane-batched campaign report:\n" + lanes.render()
    )
    emit(results_dir, "lane_engine_speedup", text)
    emit_json(
        results_dir,
        "lanes",
        {
            "scenarios": N_SCENARIOS,
            "interpreted_online_s": baseline.online_total_s,
            "serial_online_s": serial.online_total_s,
            "lane_online_s": lanes.online_total_s,
            "online_speedup": speedup,
            "packing_speedup": packing_speedup,
            "wall_speedup": wall_speedup,
            "word_occupancy": occ["occupancy"],
        },
    )

    assert speedup >= BASELINE_FLOOR, (
        f"lane packing gained only {speedup:.2f}x over the interpreted "
        f"baseline on a {N_SCENARIOS}-scenario campaign"
    )
