"""Experiment C2 — offline physical-pipeline throughput (PR 5).

The paper's economics assume the offline flow is paid once and amortized,
but through PR 4 our reproduction's pack/place/route was the wall-clock
bottleneck by two orders of magnitude (~13 s per paper-suite design vs
~0.1 s of online debugging).  This benchmark pins the two PR 5 rewrites:

* **single-design physical-stage speedup** — the incremental-HPWL
  annealer (:func:`repro.place.tplace.place_design`) and the array-backed
  PathFinder (:class:`repro.route.pathfinder.PathFinder`) against the
  dictionary-based reference implementations they were rewritten from
  (:mod:`repro.place.ref`, :mod:`repro.route.ref`), on identical packed
  designs / placements.  Acceptance: **≥5×** (CI smoke runs a
  conservative 3× floor via ``REPRO_OFFLINE_FLOOR``).
* **intra-design parallel pipeline** (PR 8) — region-parallel placement
  (:mod:`repro.place.parallel`) plus round-parallel routing
  (:mod:`repro.route.parallel`) at 4 workers against the serial
  algorithms on one cold design.  Quality (HPWL, wirelength) must be
  equal-or-better unconditionally; the **≥1.5×** wall-clock floor
  (``REPRO_INTRA_FLOOR``) applies on hosts with ≥4 cores.
* **cross-design build scaling** — an 8-design cold campaign with
  ``offline_workers=4`` must beat serial offline builds by **≥2×**
  wall-clock with byte-identical outcomes.  Outcome parity is asserted
  unconditionally; the wall-clock floor only where the host actually has
  cores to scale across (single-core CI runners and sandboxes cannot
  parallelize processes, following the ``bench_campaign`` precedent).

Quality is gated alongside speed: the rewritten placer/router must be
equal-or-better on HPWL, wirelength and overuse (see also
``tests/test_physical_perf.py``).
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import emit, emit_json
from repro.arch.routing_graph import build_rr_graph
from repro.arch.virtex5 import VIRTEX5_LIKE
from repro.physical import pack_stage
from repro.place import place_design
from repro.place.ref import place_design_ref
from repro.route import route_design
from repro.route.ref import PathFinderRef
from repro.workloads import get_spec, generate_circuit

OFFLINE_FLOOR = float(os.environ.get("REPRO_OFFLINE_FLOOR", "5.0"))
#: Single-design speedup floor for the intra-design parallel pipeline
#: (region-parallel place + round-parallel route at 4 workers), asserted
#: only on hosts with >= 4 cores — the kernels are round-trip-dominated
#: and can only lose wall-clock without processors to fan out to.
INTRA_FLOOR = float(os.environ.get("REPRO_INTRA_FLOOR", "1.5"))
SEED = 2016


@pytest.fixture(scope="module")
def packed():
    """The paper-suite design, mapped and packed once."""
    from repro.core.flow import run_generic_stage

    net = generate_circuit(get_spec("stereov."))
    offline = run_generic_stage(net)
    return pack_stage(offline.mapping, offline.instrumented, VIRTEX5_LIKE)


def test_physical_stage_speedup(packed, results_dir):
    # --- placement: rewritten vs reference on the identical packed design
    t0 = time.perf_counter()
    p_new = place_design(packed, seed=SEED)
    place_new_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    p_ref = place_design_ref(packed, seed=SEED)
    place_ref_s = time.perf_counter() - t0

    # --- routing: rewritten vs reference, each on its own placement (what
    # the production flow would have run end to end)
    rr_new = build_rr_graph(p_new.grid)
    t0 = time.perf_counter()
    r_new = route_design(p_new, rr_new)
    route_new_s = time.perf_counter() - t0
    rr_ref = build_rr_graph(p_ref.grid)
    t0 = time.perf_counter()
    r_ref = route_design(p_ref, rr_ref, pathfinder=PathFinderRef)
    route_ref_s = time.perf_counter() - t0

    speedup = (place_ref_s + route_ref_s) / (place_new_s + route_new_s)
    text = (
        "OFFLINE PHYSICAL-STAGE SPEEDUP (measured)\n"
        "paper-suite design stereov., identical packed input, seed "
        f"{SEED}\n\n"
        f"place: reference {place_ref_s:7.2f} s   rewritten "
        f"{place_new_s:7.2f} s   ({place_ref_s / place_new_s:.1f}x)\n"
        f"route: reference {route_ref_s:7.2f} s   rewritten "
        f"{route_new_s:7.2f} s   ({route_ref_s / route_new_s:.1f}x)\n\n"
        f"physical-stage speedup: {speedup:.1f}x  (floor: "
        f"{OFFLINE_FLOOR:g}x)\n\n"
        "quality (equal-or-better required):\n"
        f"  HPWL:        reference {p_ref.cost:8.1f}   rewritten "
        f"{p_new.cost:8.1f}\n"
        f"  wires used:  reference {r_ref.total_wires_used():8d}   "
        f"rewritten {r_new.total_wires_used():8d}\n"
        f"  iterations:  reference {r_ref.iterations:8d}   rewritten "
        f"{r_new.iterations:8d}\n"
    )
    emit(results_dir, "offline_physical_speedup", text)
    emit_json(
        results_dir,
        "offline",
        {
            "design": "stereov.",
            "place_ref_s": place_ref_s,
            "place_new_s": place_new_s,
            "route_ref_s": route_ref_s,
            "route_new_s": route_new_s,
            "physical_speedup": speedup,
            "hpwl_ref": p_ref.cost,
            "hpwl_new": p_new.cost,
            "wires_ref": r_ref.total_wires_used(),
            "wires_new": r_new.total_wires_used(),
        },
    )

    # quality gates ride along with the speed assertion; a single seed's
    # anneal outcome swings ±1% with any upstream netlist change (the
    # PR 10 mapping rewrite shifted same-rank cut tie-breaks), so the
    # placer gate carries that tolerance — the seed-robust equal-or-better
    # comparison lives in tests/test_physical_perf.py::TestQualityGates
    assert p_new.cost <= 1.01 * p_ref.cost, "rewritten placer lost HPWL quality"
    assert r_new.total_wires_used() <= 1.01 * r_ref.total_wires_used(), (
        "rewritten router lost wirelength quality"
    )
    assert speedup >= OFFLINE_FLOOR, (
        f"physical stage gained only {speedup:.2f}x "
        f"(floor {OFFLINE_FLOOR:g}x)"
    )


def test_intra_design_parallel_speedup(results_dir):
    """PR 8: region-parallel place + round-parallel route, one design.

    Quality gates are unconditional: the region placer must match or beat
    the serial annealer's HPWL and the routed wire count must be
    equal-or-better.  The wall-clock floor (``REPRO_INTRA_FLOOR``, 1.5x
    at 4 workers) is asserted only where the host has >= 4 cores; smaller
    hosts record the measurement with a skip note instead.
    """
    pytest.importorskip("numpy", reason="region-parallel placement needs numpy")
    from concurrent.futures import ProcessPoolExecutor

    from repro.arch import ArchSpec
    from repro.core.muxnet import build_trace_network
    from repro.mapping import TconMap
    from repro.pack import build_atoms, pack_design
    from repro.place.parallel import place_design_regions
    from repro.util.intra import IntraPool
    from repro.workloads import campaign_spec

    # channel width 40: the PR 10 mapping rewrite shifted the packed
    # netlist enough that width 32 left this design on a routability
    # cliff (one stubborn overused node) — the bench measures pipeline
    # throughput, so it keeps comfortable routing headroom instead
    arch = ArchSpec(
        k=6, n_ble=4, n_cluster_inputs=14, channel_width=40, io_capacity=4
    )
    spec = campaign_spec("synth500", n_gates=500, depth=10, n_pis=40, n_pos=20)
    net = generate_circuit(spec)
    instr = build_trace_network(net, n_buffer_inputs=2)
    mapping = TconMap(params=instr.param_ids, taps=set(instr.taps)).map(
        instr.network
    )
    design = pack_design(build_atoms(mapping, instr), arch)

    # --- serial pipeline (the historical single-threaded algorithms)
    t0 = time.perf_counter()
    p_ser = place_design(design, seed=SEED)
    place_ser_s = time.perf_counter() - t0
    rr = build_rr_graph(p_ser.grid)
    t0 = time.perf_counter()
    r_ser = route_design(p_ser, rr)
    route_ser_s = time.perf_counter() - t0

    # --- intra-parallel pipeline at 4 workers on a private pool
    workers = 4
    with ProcessPoolExecutor(max_workers=workers) as ex:
        pool = IntraPool(workers, acquire=lambda: ex)
        t0 = time.perf_counter()
        p_par = place_design_regions(design, seed=SEED, regions=8, intra=pool)
        place_par_s = time.perf_counter() - t0
        rr_par = build_rr_graph(p_par.grid)
        t0 = time.perf_counter()
        r_par = route_design(p_par, rr_par, rounds=True, intra=pool)
        route_par_s = time.perf_counter() - t0

    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    serial_s = place_ser_s + route_ser_s
    par_s = place_par_s + route_par_s
    speedup = serial_s / par_s
    floored = cores >= 4
    note = (
        f"floor {INTRA_FLOOR:g}x enforced ({cores} cores)"
        if floored
        else f"floor not enforced: host has {cores} core(s), need 4"
    )
    text = (
        "INTRA-DESIGN PARALLEL PHYSICAL PIPELINE (measured)\n"
        f"single cold design synth500, seed {SEED}, {workers} workers\n\n"
        f"place: serial {place_ser_s:6.2f} s   region-parallel "
        f"{place_par_s:6.2f} s\n"
        f"route: serial {route_ser_s:6.2f} s   round-parallel "
        f"{route_par_s:6.2f} s\n\n"
        f"single-design speedup: {speedup:.2f}x  ({note})\n\n"
        "quality (equal-or-better required, asserted unconditionally):\n"
        f"  HPWL:       serial {p_ser.cost:8.1f}   parallel {p_par.cost:8.1f}\n"
        f"  wires used: serial {r_ser.total_wires_used():8d}   parallel "
        f"{r_par.total_wires_used():8d}\n"
    )
    emit(results_dir, "offline_intra_design", text)
    emit_json(
        results_dir,
        "offline",
        {
            "intra_design": "synth500",
            "intra_workers": workers,
            "intra_place_serial_s": place_ser_s,
            "intra_place_parallel_s": place_par_s,
            "intra_route_serial_s": route_ser_s,
            "intra_route_parallel_s": route_par_s,
            "intra_speedup": speedup,
            "intra_floor_enforced": floored,
            "intra_hpwl_serial": p_ser.cost,
            "intra_hpwl_parallel": p_par.cost,
            "intra_wires_serial": r_ser.total_wires_used(),
            "intra_wires_parallel": r_par.total_wires_used(),
            "host_cores": cores,
        },
    )

    assert p_par.cost <= p_ser.cost, "region placer lost HPWL quality"
    assert r_par.total_wires_used() <= r_ser.total_wires_used(), (
        "intra-parallel pipeline lost wirelength quality"
    )
    if floored:
        assert speedup >= INTRA_FLOOR, (
            f"intra-design pipeline gained only {speedup:.2f}x at "
            f"{workers} workers (floor {INTRA_FLOOR:g}x)"
        )


@pytest.mark.slow
def test_offline_parallel_scaling(results_dir):
    """8 distinct cold designs: offline_workers=4 vs serial builds."""
    from repro.campaign import CampaignConfig, run_campaign
    from repro.workloads import campaign_spec, mutation_scenarios

    spec = campaign_spec(
        "offline-bench", n_gates=180, depth=8, n_pis=24, n_pos=12
    )
    # each mutation is its own design content — 8 distinct offline builds
    scenarios = mutation_scenarios(spec, 8, seed=11, horizon=48)

    serial = run_campaign(
        scenarios,
        config=CampaignConfig(offline_workers=1, with_physical=True),
        cache=None,
    )
    parallel = run_campaign(
        scenarios,
        config=CampaignConfig(offline_workers=4, with_physical=True),
        cache=None,
    )
    assert parallel.outcomes() == serial.outcomes(), (
        "parallel offline builds changed results"
    )

    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    scaling = serial.offline_wall_s / parallel.offline_wall_s
    text = (
        "CROSS-DESIGN OFFLINE BUILD SCALING (measured)\n"
        "8 distinct mutated designs, full offline stage (generic + "
        "pack/place/route + bitstream), cold\n\n"
        f"serial builds:        {serial.offline_wall_s:8.2f} s offline "
        f"wall ({serial.wall_s:.2f} s campaign)\n"
        f"4 build workers:      {parallel.offline_wall_s:8.2f} s offline "
        f"wall ({parallel.wall_s:.2f} s campaign)\n\n"
        f"offline scaling: {scaling:.2f}x  (workers used: "
        f"{parallel.offline_workers}, host cores: {cores})\n"
        "outcomes: byte-identical to serial builds\n"
    )
    emit(results_dir, "offline_parallel_scaling", text)
    emit_json(
        results_dir,
        "offline",
        {
            "designs": 8,
            "serial_offline_wall_s": serial.offline_wall_s,
            "parallel_offline_wall_s": parallel.offline_wall_s,
            "offline_scaling": scaling,
            "offline_workers": parallel.offline_workers,
            "host_cores": cores,
            "offline_stage_s": {
                k: round(v, 3) for k, v in serial.offline_stage_s.items()
            },
        },
    )

    # process-level scaling needs processors: on a single-core host the
    # pool can only add overhead, so (like bench_campaign's online pool
    # test) the wall-clock floor is asserted only where cores exist
    if cores >= 4:
        assert scaling >= 2.0, (
            f"4 offline workers gained only {scaling:.2f}x on 8 cold designs"
        )
    elif cores >= 2:
        assert scaling >= 1.2, (
            f"offline workers gained only {scaling:.2f}x on {cores} cores"
        )
