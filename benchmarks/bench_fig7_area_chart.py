"""Experiment F7 — Fig. 7: area results in terms of look-up tables.

Same data as Table I rendered as the per-benchmark series (ASCII bars +
CSV) the figure plots.
"""

from __future__ import annotations

from benchmarks.conftest import emit, emit_json
from repro.analysis import run_fig7


def test_fig7_area_chart(benchmark, results_dir):
    text = benchmark.pedantic(
        lambda: run_fig7(), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(results_dir, "fig7_area_chart", text)
    assert "CSV series" in text
    assert "Proposed" in text
    emit_json(
        results_dir,
        "fig7_area_chart",
        {"csv_lines": sum(1 for l in text.splitlines() if "," in l)},
    )
