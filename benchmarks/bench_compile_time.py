"""Experiment C1 — §V-C.1: compile-time overhead.

Runs full pack/place/route for both flows on the small-design subset and
reports wires, CLBs and P&R runtimes.  The paper's numbers: ~3× fewer
wires (5316 vs 15699), up to 4× fewer CLBs, up to 3× faster P&R for the
parameterized flow.

stereov. runs by default; set ``REPRO_C1_FULL=1`` to include the other
small designs (diffeq2/diffeq1 — several extra minutes of routing).
"""

from __future__ import annotations

import os

from benchmarks.conftest import emit, emit_json
from repro.analysis import run_compile_time
from repro.workloads import get_spec


def _specs():
    if os.environ.get("REPRO_C1_FULL"):
        return None  # the full small-design subset
    return [get_spec("stereov.")]


def test_compile_time_overhead(benchmark, results_dir):
    text = benchmark.pedantic(
        lambda: run_compile_time(_specs()),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    emit(results_dir, "compile_time", text)
    # the parameterized flow must use fewer wires and fewer CLBs
    wires_ratio = clb_ratio = None
    for line in text.splitlines():
        if line.startswith("stereov."):
            cells = [c.strip() for c in line.split("|")]
            wires_ratio = float(cells[3].rstrip("x"))
            clb_ratio = float(cells[6].rstrip("x"))
            assert wires_ratio > 1.3, f"wire ratio {wires_ratio}"
            assert clb_ratio > 1.2, f"CLB ratio {clb_ratio}"
    emit_json(
        results_dir,
        "compile_time",
        {"stereov_wires_ratio": wires_ratio, "stereov_clb_ratio": clb_ratio},
    )
