"""Micro-benchmarks M1 — the online stage's hot paths, measured for real.

These use pytest-benchmark's statistics properly (many rounds): SCG
specialization, Boolean-expression evaluation, frame diffing and
bit-parallel simulation throughput.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit_json
from repro.core.boolfunc import bf_conj, bf_var
from repro.core.parameters import ParameterSpace
from repro.core.pconf import ParameterizedBitstream
from repro.bitgen.partial import changed_frames
from repro.netlist.simulate import random_stimulus, simulate_combinational
from repro.workloads import generate_circuit, get_spec
from repro.util.rng import RngHub


@pytest.fixture(scope="module")
def pconf_mid():
    """A synthetic PConf the size of a mid-benchmark debug network."""
    space = ParameterSpace([f"p{i}" for i in range(256)])
    pb = ParameterizedBitstream(space, n_bits=20_000)
    rng = np.random.default_rng(1)
    for i in range(0, 20_000, 4):
        lits = [
            (int(rng.integers(0, 256)), int(rng.integers(0, 2)))
            for _ in range(3)
        ]
        pb.set_tunable(i, bf_conj(lits))
    return space, pb


def test_scg_specialization_speed(benchmark, pconf_mid):
    space, pb = pconf_mid
    assignment = space.assignment({"p3": 1, "p77": 1})
    bits, stats = benchmark(pb.specialize, assignment)
    assert bits.shape == (20_000,)
    # a few random conjunctions fold to constants (conflicting literals),
    # so the tunable count sits just under the 5000 candidates
    assert 4_800 <= stats.n_tunable_bits <= 5_000


def test_boolfunc_eval_speed(benchmark):
    vec = np.zeros(64, dtype=np.uint8)
    vec[7] = 1
    expr = bf_conj([(7, 1), (9, 0), (13, 0)]) | bf_var(22)
    result = benchmark(expr.evaluate, vec)
    assert result == 1


def test_frame_diff_speed(benchmark):
    rng = np.random.default_rng(3)
    old = rng.integers(0, 2, size=200_000).astype(np.uint8)
    new = old.copy()
    flips = rng.integers(0, old.size, size=40)
    new[flips] ^= 1
    frames = benchmark(changed_frames, old, new, 1312)
    assert 1 <= len(frames) <= 40


def test_bit_parallel_simulation_speed(benchmark, results_dir):
    net = generate_circuit(get_spec("stereov."))
    rng = RngHub(5).stream("sim")
    stim_named = random_stimulus(net, n_vectors=4096, rng=rng)
    stim = {net.require(k): v for k, v in stim_named.items()}
    for latch in net.latches:
        stim[latch.q] = np.zeros(64, dtype=np.uint64)
    values = benchmark(simulate_combinational, net, stim)
    assert len(values) == net.n_nodes
    emit_json(
        results_dir,
        "micro",
        {"compiled_sim_4096v_mean_s": benchmark.stats.stats.mean},
    )


def test_interpreted_simulation_speed(benchmark, results_dir):
    """The reference interpreter on the same workload — the denominator
    of the compiled-kernel speedup tracked in BENCH_micro.json."""
    net = generate_circuit(get_spec("stereov."))
    rng = RngHub(5).stream("sim")
    stim_named = random_stimulus(net, n_vectors=4096, rng=rng)
    stim = {net.require(k): v for k, v in stim_named.items()}
    for latch in net.latches:
        stim[latch.q] = np.zeros(64, dtype=np.uint64)
    values = benchmark(
        simulate_combinational, net, stim, interpreted=True
    )
    assert len(values) == net.n_nodes
    emit_json(
        results_dir,
        "micro",
        {"interpreted_sim_4096v_mean_s": benchmark.stats.stats.mean},
    )
