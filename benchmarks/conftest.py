"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artifact (table/figure/section) and
writes its output under ``results/`` as well as printing it, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the full evaluation
section in one run.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.stdout.reconfigure(line_buffering=True)


@pytest.fixture(scope="session")
def results_dir() -> str:
    from repro.analysis.reporting import results_dir as _rd

    return _rd(os.path.join(os.path.dirname(__file__), "..", "results"))


def emit(results_dir: str, name: str, text: str) -> None:
    """Print a result block and persist it to results/<name>.txt."""
    from repro.analysis.reporting import save_result

    path = save_result(name, text, results_dir)
    print(f"\n{'=' * 72}\n{text}\n[saved to {path}]\n{'=' * 72}")
