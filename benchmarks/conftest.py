"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artifact (table/figure/section) and
writes its output under ``results/`` as well as printing it, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the full evaluation
section in one run.  Besides the human-readable ``results/<name>.txt``,
every benchmark persists its headline numbers machine-readably via
:func:`emit_json` as ``results/BENCH_<name>.json`` — the perf trajectory
CI tracks across PRs (the bench-smoke job uploads these artifacts and
enforces regression floors on them).
"""

from __future__ import annotations

import json
import os
import sys

import pytest

sys.stdout.reconfigure(line_buffering=True)


@pytest.fixture(scope="session")
def results_dir() -> str:
    from repro.analysis.reporting import results_dir as _rd

    return _rd(os.path.join(os.path.dirname(__file__), "..", "results"))


def emit(results_dir: str, name: str, text: str) -> None:
    """Print a result block and persist it to results/<name>.txt."""
    from repro.analysis.reporting import save_result

    path = save_result(name, text, results_dir)
    print(f"\n{'=' * 72}\n{text}\n[saved to {path}]\n{'=' * 72}")


def emit_json(results_dir: str, name: str, data: dict) -> str:
    """Merge ``data`` into ``results/BENCH_<name>.json``.

    Merging (rather than overwriting) lets several tests of one bench
    file contribute fields to a single machine-readable record — e.g.
    ``bench_kernels.py``'s per-step and end-to-end measurements — and
    lets a CI smoke run that executes only the fast subset leave the
    other fields untouched.
    """
    path = os.path.join(results_dir, f"BENCH_{name}.json")
    merged: dict = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as fh:
                merged = json.load(fh)
        except (OSError, ValueError):
            merged = {}
    merged.update(data)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True, default=float)
        fh.write("\n")
    print(f"[bench json saved to {path}]")
    return path
