"""Experiment B2 — incremental recompilation via per-stage caching.

The paper's central claim — change the instrumentation *without*
recompiling the design — measured at the compile-flow level: a sweep of
warm single-knob configuration changes (the kind a debugging engineer
makes between turns) under three cost models:

* **cold** — no cache at all: every change pays the full generic flow,
  the conventional-recompile baseline (the same stage graph with caching
  disabled);
* **whole-artifact** — PR 1's ``OfflineCache``: any config change misses
  the single content key and rebuilds everything;
* **stage-granular** — the ``ArtifactStore`` of :mod:`repro.pipeline`:
  each stage keyed by exactly the config fields it reads plus upstream
  keys, so a changed ``fold_polarity`` rebuilds only the TCON mapping and
  a changed ``trace_depth`` rebuilds nothing.

Headline assertion (acceptance criterion of the stage-graph refactor):
the stage-granular sweep beats the whole-artifact sweep on wall clock,
with identical artifacts.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import emit, emit_json
from repro.baselines.incremental import invalidation_table, stages_invalidated
from repro.campaign import ArtifactStore, OfflineCache, resolve_offline
from repro.core.flow import DebugFlowConfig
from repro.util.timing import Stopwatch
from repro.workloads import campaign_spec, generate_circuit

#: Sized so one generic stage costs a measurable fraction of a second —
#: large enough that key hashing is noise, small enough for CI.
SPEC = campaign_spec("incr-bench", n_gates=400, depth=10, n_pis=24, n_pos=12)

BASE = DebugFlowConfig()
#: One knob flipped per debugging turn — each invalidating a different
#: suffix of the stage graph (deepest reuse first).
VARIANTS = [
    ("trace_depth=2048", replace(BASE, trace_depth=2048)),
    ("fold_polarity=off", replace(BASE, fold_polarity=False)),
    ("n_buffer_inputs=12", replace(BASE, n_buffer_inputs=12)),
    ("area_rounds=1", replace(BASE, area_rounds=1)),
]


def _sweep(cache) -> tuple[float, list[str]]:
    """Build the base config then every variant; returns (seconds, summaries)."""
    net = generate_circuit(SPEC)
    summaries = []
    with Stopwatch() as sw:
        for _, cfg in [("base", BASE), *VARIANTS]:
            stage, _ = resolve_offline(net, cfg, cache=cache)
            summaries.append(stage.summary())
    return sw.elapsed, summaries


@pytest.mark.slow
def test_incremental_stage_cache_speedup(results_dir):
    cold_s, cold_sum = _sweep(None)
    whole_s, whole_sum = _sweep(OfflineCache())
    store = ArtifactStore()
    stage_s, stage_sum = _sweep(store)

    # caching may never change what is built
    assert stage_sum == whole_sum == cold_sum, "cache granularity changed artifacts"

    net = generate_circuit(SPEC)
    per_variant = {
        label: stages_invalidated(net, BASE, cfg) for label, cfg in VARIANTS
    }
    assert per_variant["trace_depth=2048"] == []
    assert per_variant["fold_polarity=off"] == ["tcon-map"]

    speedup_vs_whole = whole_s / stage_s if stage_s else 0.0
    speedup_vs_cold = cold_s / stage_s if stage_s else 0.0
    text = (
        "INCREMENTAL RECOMPILATION — STAGE-GRANULAR CACHING (measured)\n"
        f"{SPEC.name} ({SPEC.n_gates} gates); base config + "
        f"{len(VARIANTS)} warm single-knob changes, generic flow\n\n"
        f"cold (conventional recompile):  {cold_s:8.2f} s\n"
        f"whole-artifact cache (PR 1):    {whole_s:8.2f} s\n"
        f"stage-granular cache:           {stage_s:8.2f} s\n\n"
        f"stage vs whole-artifact: {speedup_vs_whole:.2f}x   "
        f"stage vs cold: {speedup_vs_cold:.2f}x\n\n"
        "stages invalidated per change (parameterized vs conventional):\n"
        + invalidation_table(net, BASE, VARIANTS)
        + "\n\nper-stage store accounting:\n"
        + "\n".join(
            f"  {name}: {stats}"
            for name, stats in store.stats.as_dict()["per_stage"].items()
        )
    )
    emit(results_dir, "incremental_stage_cache", text)
    emit_json(
        results_dir,
        "incremental",
        {
            "cold_s": cold_s,
            "whole_artifact_s": whole_s,
            "stage_granular_s": stage_s,
            "speedup_vs_whole": speedup_vs_whole,
            "speedup_vs_cold": speedup_vs_cold,
            "variants": len(VARIANTS),
        },
    )

    assert speedup_vs_whole >= 1.2, (
        f"stage-granular caching gained only {speedup_vs_whole:.2f}x over "
        "the whole-artifact cache on a warm single-knob sweep"
    )


@pytest.mark.slow
def test_stage_cache_disk_warm_restart(results_dir, tmp_path):
    """A fresh process (fresh store, same directory) reuses every stage."""
    d = str(tmp_path / "cache")
    net = generate_circuit(SPEC)
    first = ArtifactStore(cache_dir=d)
    with Stopwatch() as sw_cold:
        resolve_offline(net, BASE, cache=first)

    restarted = ArtifactStore(cache_dir=d)
    with Stopwatch() as sw_warm:
        stage, hit = resolve_offline(net, BASE, cache=restarted)
    assert hit and restarted.stats.misses == 0
    assert restarted.stats.disk_hits == restarted.stats.hits
    assert stage.summary()

    ratio = sw_cold.elapsed / sw_warm.elapsed if sw_warm.elapsed else 0.0
    text = (
        "STAGE CACHE — CROSS-PROCESS WARM RESTART (measured)\n"
        f"cold build: {sw_cold.elapsed:.2f} s; disk-warm restart: "
        f"{sw_warm.elapsed:.2f} s ({ratio:.1f}x)\n"
        f"stats: {restarted.stats.as_dict()}"
    )
    emit(results_dir, "incremental_disk_restart", text)
    emit_json(
        results_dir,
        "incremental",
        {
            "disk_cold_s": sw_cold.elapsed,
            "disk_warm_s": sw_warm.elapsed,
            "disk_restart_speedup": ratio,
        },
    )
