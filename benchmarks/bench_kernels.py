"""Experiment K — compiled simulation kernels vs the interpreted path.

Three measurements, one per acceptance criterion:

* **per-step** (fast; the CI bench-smoke floor): a single packed
  emulation step of the mapped campaign design, compiled
  (:mod:`repro.netlist.compiled` — generated straight-line kernel over
  word-packed integers) vs interpreted (per-gate numpy cover
  evaluation).  Target: **≥5× single-word step speedup**.
* **backend axis** (fast; the CI backend floor): the same compiled
  program executed by the python big-int kernels vs the vectorized
  numpy lowering at **512 lanes** (8 words, cycle-batched), on a larger
  mapped design.  Target: **≥3× numpy-over-python step throughput at
  width ≥512**.
* **end-to-end** (slow tier): the PR 3 32-scenario stuck-at campaign at
  ``lane_width=64`` run compiled vs ``interpreted=True``, offline cache
  pre-warmed so only the online phase is compared.  Target: **≥2×
  online-phase speedup** with byte-identical outcomes.

All write their headline numbers into ``results/BENCH_kernels.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import emit, emit_json
from repro.campaign import CampaignConfig, OfflineCache, run_campaign
from repro.core.flow import run_generic_stage
from repro.netlist.simulate import SequentialSimulator
from repro.workloads import campaign_spec, generate_circuit, stuck_at_scenarios

SPEC = campaign_spec("kernels-bench", n_gates=150, depth=8, n_pis=20, n_pos=10)
N_SCENARIOS = 32
HORIZON = 48
STEP_CYCLES = 300

#: Acceptance bar on dev machines; CI's bench-smoke job overrides this to
#: its conservative 3x floor (shared runners are noisy) via the env var
#: and re-enforces the same floor from the emitted JSON.
STEP_FLOOR = float(os.environ.get("REPRO_KERNEL_STEP_FLOOR", "5.0"))

#: The backend axis: numpy-over-python throughput at 512 lanes.  The
#: wide design below measures ~3.3x in a 1-core container; the floor is
#: the issue's acceptance bar.
NUMPY_FLOOR = float(os.environ.get("REPRO_NUMPY_STEP_FLOOR", "3.0"))
WIDE_SPEC = campaign_spec(
    "kernels-bench-wide", n_gates=600, depth=10, n_pis=40, n_pos=20
)
WIDE_WORDS = 8  # 512 lanes
WIDE_CYCLES = 192


@pytest.fixture(scope="module")
def mapped_net():
    # the network the online engine actually steps: the mapped LUT/TCON
    # materialization, not the source netlist
    offline = run_generic_stage(generate_circuit(SPEC))
    return offline.mapping.to_lut_network()


def _time_steps(sim: SequentialSimulator, stims: list[dict]) -> float:
    t0 = time.perf_counter()
    for stim in stims:
        sim.step(stim)
    return (time.perf_counter() - t0) / len(stims)


def test_step_kernel_speedup(mapped_net, results_dir):
    rng = np.random.default_rng(0)
    stims = [
        {
            p: rng.integers(
                0,
                np.iinfo(np.uint64).max,
                size=1,
                dtype=np.uint64,
                endpoint=True,
            )
            for p in mapped_net.pis
        }
        for _ in range(STEP_CYCLES)
    ]

    interp = SequentialSimulator(mapped_net, interpreted=True)
    compiled = SequentialSimulator(mapped_net)

    # parity spot-check before timing: same stimulus, identical values
    vi = interp.step(stims[0])
    vc = compiled.step(stims[0])
    for nid in mapped_net.nodes():
        assert np.array_equal(vi[nid], vc[nid]), mapped_net.node_name(nid)
    interp.reset()
    compiled.reset()

    t_interp = _time_steps(interp, stims)
    t_compiled = _time_steps(compiled, stims)
    speedup = t_interp / t_compiled

    text = (
        "COMPILED SIMULATION KERNELS — per-step (measured)\n"
        f"mapped {SPEC.name} ({mapped_net.n_gates} LUT/TCON gates, "
        f"{mapped_net.n_pis} PIs), single packed word, "
        f"{STEP_CYCLES} cycles\n\n"
        f"interpreted (per-gate numpy covers): {t_interp * 1e6:9.1f} us/step\n"
        f"compiled (generated int kernel):     {t_compiled * 1e6:9.1f} us/step\n\n"
        f"per-step speedup: {speedup:.1f}x  (floor: {STEP_FLOOR:g}x)\n"
        "values bit-identical across every node\n"
    )
    emit(results_dir, "kernel_step_speedup", text)
    emit_json(
        results_dir,
        "kernels",
        {
            "design": SPEC.name,
            "mapped_gates": mapped_net.n_gates,
            "step_cycles": STEP_CYCLES,
            "interpreted_us_per_step": t_interp * 1e6,
            "compiled_us_per_step": t_compiled * 1e6,
            "step_speedup": speedup,
        },
    )
    assert speedup >= STEP_FLOOR, (
        f"compiled kernel gained only {speedup:.2f}x per step"
    )


def test_numpy_backend_speedup_512_lanes(results_dir):
    """Backend axis: python big-int kernels vs the vectorized numpy
    lowering, same compiled program, 512 lanes (8 words)."""
    import random

    from repro.netlist.compiled import CompiledSimulator, program_for

    offline = run_generic_stage(generate_circuit(WIDE_SPEC))
    net = offline.mapping.to_lut_network()
    program = program_for(net)
    rng = random.Random(0)
    stims = [
        {p: rng.getrandbits(64 * WIDE_WORDS) for p in net.pis}
        for _ in range(WIDE_CYCLES)
    ]

    py = CompiledSimulator(program, WIDE_WORDS, backend="python")
    vec = CompiledSimulator(program, WIDE_WORDS, backend="numpy")

    # parity spot-check before timing: a few stepwise cycles, every node
    for stim in stims[:4]:
        py.step(stim)
        vec.step(stim)
        nodes = list(net.nodes())
        assert py.node_ints(nodes) == vec.node_ints(nodes)

    # each backend is fed its native stimulus format, prepared up front:
    # big-int dicts for the python kernels, dense uint64 matrices (one
    # per batch, ``run_block_array``) for the vectorized plan — the
    # measurement is kernel step throughput, not int<->array conversion
    blk = vec.block_cycles
    wb = 8 * WIDE_WORDS
    batches = []
    for at in range(0, len(stims), blk):
        chunk = stims[at : at + blk]
        data = b"".join(
            row[p].to_bytes(wb, "little") for p in program.pi_nodes for row in chunk
        )
        batches.append(
            np.frombuffer(data, dtype=np.uint64).reshape(
                len(program.pi_nodes), len(chunk) * WIDE_WORDS
            )
        )

    def time_python() -> float:
        py.reset()
        t0 = time.perf_counter()
        for stim in stims:
            py.step(stim)
        return (time.perf_counter() - t0) / len(stims)

    def time_numpy() -> float:
        vec.reset()
        t0 = time.perf_counter()
        for batch in batches:
            vec.run_block_array(batch)
        return (time.perf_counter() - t0) / len(stims)

    t_py = min(time_python() for _ in range(3))
    t_np = min(time_numpy() for _ in range(3))
    speedup = t_py / t_np

    # batched-path parity: the final batch's last cycle must match the
    # python backend's final step bit for bit
    nodes = list(net.nodes())
    assert py.node_ints(nodes) == vec.node_ints(nodes)

    text = (
        "COMPILED SIMULATION KERNELS — backend axis (measured)\n"
        f"mapped {WIDE_SPEC.name} ({net.n_gates} LUT/TCON gates, "
        f"{net.n_pis} PIs), {64 * WIDE_WORDS} lanes ({WIDE_WORDS} words), "
        f"{WIDE_CYCLES} cycles, numpy cycle-batching x{vec.block_cycles}\n\n"
        f"python backend (big-int kernels):  {t_py * 1e6:9.1f} us/step\n"
        f"numpy backend (vectorized plan):   {t_np * 1e6:9.1f} us/step\n\n"
        f"numpy-over-python speedup: {speedup:.2f}x  "
        f"(floor: {NUMPY_FLOOR:g}x)\n"
        "values bit-identical across every node\n"
    )
    emit(results_dir, "kernel_numpy_speedup", text)
    emit_json(
        results_dir,
        "kernels",
        {
            "wide_design": WIDE_SPEC.name,
            "wide_mapped_gates": net.n_gates,
            "wide_lane_width": 64 * WIDE_WORDS,
            "wide_block_cycles": vec.block_cycles,
            "python_us_per_step_512": t_py * 1e6,
            "numpy_us_per_step_512": t_np * 1e6,
            "numpy_step_speedup_512": speedup,
        },
    )
    assert speedup >= NUMPY_FLOOR, (
        f"numpy backend gained only {speedup:.2f}x at 512 lanes"
    )


@pytest.mark.slow
def test_online_phase_speedup(results_dir):
    scenarios = stuck_at_scenarios(SPEC, N_SCENARIOS, horizon=HORIZON)
    cache = OfflineCache()
    # pre-warm the offline artifact so both runs measure the online phase
    run_campaign(scenarios[:1], config=CampaignConfig(), cache=cache)

    interp = run_campaign(
        scenarios,
        config=CampaignConfig(lane_width=64, interpreted=True),
        cache=cache,
    )
    compiled = run_campaign(
        scenarios, config=CampaignConfig(lane_width=64), cache=cache
    )

    assert compiled.outcomes() == interp.outcomes(), (
        "compiled kernels changed campaign outcomes"
    )
    assert "error" not in {r.status for r in compiled.results}

    speedup = interp.online_total_s / compiled.online_total_s
    text = (
        "COMPILED SIMULATION KERNELS — online phase (measured)\n"
        f"{N_SCENARIOS}-scenario stuck-at campaign on {SPEC.name}, "
        f"lane_width=64, horizon {HORIZON}, offline cache pre-warmed\n\n"
        f"interpreted engine: {interp.online_total_s:8.2f} s online "
        f"({interp.wall_s:.2f} s wall)\n"
        f"compiled kernels:   {compiled.online_total_s:8.2f} s online "
        f"({compiled.wall_s:.2f} s wall)\n\n"
        f"online-phase speedup: {speedup:.2f}x  (acceptance floor: 2x)\n"
        "outcomes: byte-identical\n"
    )
    emit(results_dir, "kernel_online_speedup", text)
    emit_json(
        results_dir,
        "kernels",
        {
            "campaign_scenarios": N_SCENARIOS,
            "campaign_horizon": HORIZON,
            "interpreted_online_s": interp.online_total_s,
            "compiled_online_s": compiled.online_total_s,
            "online_speedup": speedup,
        },
    )
    assert speedup >= 2.0, (
        f"compiled kernels gained only {speedup:.2f}x online"
    )
