"""Experiment K — compiled simulation kernels vs the interpreted path.

Two measurements, one per acceptance criterion:

* **per-step** (fast; the CI bench-smoke floor): a single packed
  emulation step of the mapped campaign design, compiled
  (:mod:`repro.netlist.compiled` — generated straight-line kernel over
  word-packed integers) vs interpreted (per-gate numpy cover
  evaluation).  Target: **≥5× single-word step speedup**.
* **end-to-end** (slow tier): the PR 3 32-scenario stuck-at campaign at
  ``lane_width=64`` run compiled vs ``interpreted=True``, offline cache
  pre-warmed so only the online phase is compared.  Target: **≥2×
  online-phase speedup** with byte-identical outcomes.

Both write their headline numbers into ``results/BENCH_kernels.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import emit, emit_json
from repro.campaign import CampaignConfig, OfflineCache, run_campaign
from repro.core.flow import run_generic_stage
from repro.netlist.simulate import SequentialSimulator
from repro.workloads import campaign_spec, generate_circuit, stuck_at_scenarios

SPEC = campaign_spec("kernels-bench", n_gates=150, depth=8, n_pis=20, n_pos=10)
N_SCENARIOS = 32
HORIZON = 48
STEP_CYCLES = 300

#: Acceptance bar on dev machines; CI's bench-smoke job overrides this to
#: its conservative 3x floor (shared runners are noisy) via the env var
#: and re-enforces the same floor from the emitted JSON.
STEP_FLOOR = float(os.environ.get("REPRO_KERNEL_STEP_FLOOR", "5.0"))


@pytest.fixture(scope="module")
def mapped_net():
    # the network the online engine actually steps: the mapped LUT/TCON
    # materialization, not the source netlist
    offline = run_generic_stage(generate_circuit(SPEC))
    return offline.mapping.to_lut_network()


def _time_steps(sim: SequentialSimulator, stims: list[dict]) -> float:
    t0 = time.perf_counter()
    for stim in stims:
        sim.step(stim)
    return (time.perf_counter() - t0) / len(stims)


def test_step_kernel_speedup(mapped_net, results_dir):
    rng = np.random.default_rng(0)
    stims = [
        {
            p: rng.integers(
                0,
                np.iinfo(np.uint64).max,
                size=1,
                dtype=np.uint64,
                endpoint=True,
            )
            for p in mapped_net.pis
        }
        for _ in range(STEP_CYCLES)
    ]

    interp = SequentialSimulator(mapped_net, interpreted=True)
    compiled = SequentialSimulator(mapped_net)

    # parity spot-check before timing: same stimulus, identical values
    vi = interp.step(stims[0])
    vc = compiled.step(stims[0])
    for nid in mapped_net.nodes():
        assert np.array_equal(vi[nid], vc[nid]), mapped_net.node_name(nid)
    interp.reset()
    compiled.reset()

    t_interp = _time_steps(interp, stims)
    t_compiled = _time_steps(compiled, stims)
    speedup = t_interp / t_compiled

    text = (
        "COMPILED SIMULATION KERNELS — per-step (measured)\n"
        f"mapped {SPEC.name} ({mapped_net.n_gates} LUT/TCON gates, "
        f"{mapped_net.n_pis} PIs), single packed word, "
        f"{STEP_CYCLES} cycles\n\n"
        f"interpreted (per-gate numpy covers): {t_interp * 1e6:9.1f} us/step\n"
        f"compiled (generated int kernel):     {t_compiled * 1e6:9.1f} us/step\n\n"
        f"per-step speedup: {speedup:.1f}x  (floor: {STEP_FLOOR:g}x)\n"
        "values bit-identical across every node\n"
    )
    emit(results_dir, "kernel_step_speedup", text)
    emit_json(
        results_dir,
        "kernels",
        {
            "design": SPEC.name,
            "mapped_gates": mapped_net.n_gates,
            "step_cycles": STEP_CYCLES,
            "interpreted_us_per_step": t_interp * 1e6,
            "compiled_us_per_step": t_compiled * 1e6,
            "step_speedup": speedup,
        },
    )
    assert speedup >= STEP_FLOOR, (
        f"compiled kernel gained only {speedup:.2f}x per step"
    )


@pytest.mark.slow
def test_online_phase_speedup(results_dir):
    scenarios = stuck_at_scenarios(SPEC, N_SCENARIOS, horizon=HORIZON)
    cache = OfflineCache()
    # pre-warm the offline artifact so both runs measure the online phase
    run_campaign(scenarios[:1], config=CampaignConfig(), cache=cache)

    interp = run_campaign(
        scenarios,
        config=CampaignConfig(lane_width=64, interpreted=True),
        cache=cache,
    )
    compiled = run_campaign(
        scenarios, config=CampaignConfig(lane_width=64), cache=cache
    )

    assert compiled.outcomes() == interp.outcomes(), (
        "compiled kernels changed campaign outcomes"
    )
    assert "error" not in {r.status for r in compiled.results}

    speedup = interp.online_total_s / compiled.online_total_s
    text = (
        "COMPILED SIMULATION KERNELS — online phase (measured)\n"
        f"{N_SCENARIOS}-scenario stuck-at campaign on {SPEC.name}, "
        f"lane_width=64, horizon {HORIZON}, offline cache pre-warmed\n\n"
        f"interpreted engine: {interp.online_total_s:8.2f} s online "
        f"({interp.wall_s:.2f} s wall)\n"
        f"compiled kernels:   {compiled.online_total_s:8.2f} s online "
        f"({compiled.wall_s:.2f} s wall)\n\n"
        f"online-phase speedup: {speedup:.2f}x  (acceptance floor: 2x)\n"
        "outcomes: byte-identical\n"
    )
    emit(results_dir, "kernel_online_speedup", text)
    emit_json(
        results_dir,
        "kernels",
        {
            "campaign_scenarios": N_SCENARIOS,
            "campaign_horizon": HORIZON,
            "interpreted_online_s": interp.online_total_s,
            "compiled_online_s": compiled.online_total_s,
            "online_speedup": speedup,
        },
    )
    assert speedup >= 2.0, (
        f"compiled kernels gained only {speedup:.2f}x online"
    )
