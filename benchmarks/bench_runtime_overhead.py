"""Experiment R1 — §V-C.2: run-time overhead of the online stage.

Specialization (PConf Boolean-function evaluation + partial
reconfiguration) vs full reconfiguration on the modeled Virtex-5:
the paper quotes ≤50 µs evaluation, 176 ms full configuration (~3 orders
of magnitude) and a break-even of ~5000 debugging turns at 400 MHz with a
4-tick debug loop.
"""

from __future__ import annotations

from benchmarks.conftest import emit, emit_json
from repro.analysis import run_runtime_overhead
from repro.core.costmodel import Virtex5Model


def test_runtime_overhead(benchmark, results_dir):
    text = benchmark.pedantic(
        lambda: run_runtime_overhead(),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    emit(results_dir, "runtime_overhead", text)

    model = Virtex5Model()
    full = model.full_reconfig_s()
    assert abs(full - 0.176) < 0.002, "full reconfiguration must be ~176 ms"
    assert model.debug_turn_s() == 4 / 400e6
    # 50 us of specialization amortizes over ~5000 debugging turns
    assert model.break_even_turns(50e-6) == 5000

    # three-orders-of-magnitude shape from the measured report
    factor = None
    for line in text.splitlines():
        if line.startswith("shape check"):
            factor = float(line.split("is ")[1].split("x")[0])
            assert factor >= 1000, f"only {factor}x faster than full reconfig"
    emit_json(
        results_dir,
        "runtime_overhead",
        {
            "full_reconfig_s": full,
            "debug_turn_s": model.debug_turn_s(),
            "break_even_turns_50us": model.break_even_turns(50e-6),
            "specialization_vs_full_factor": factor,
        },
    )
