"""Experiment T1 — Table I: area results in #LUTs.

Regenerates the Initial / SimpleMap / ABC / Proposed(TLUT/TCON) columns for
all eight benchmarks and checks the paper's headline shape: the proposed
parameterized flow is ≈3.5× smaller than the conventional mappers on the
instrumented designs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_json
from repro.analysis import run_benchmark_columns, run_table1
from repro.workloads import paper_suite


def test_table1_area(benchmark, results_dir):
    text = benchmark.pedantic(
        lambda: run_table1(), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(results_dir, "table1_area", text)

    # shape assertions on the cached columns
    ratios = []
    for spec in paper_suite():
        cols = run_benchmark_columns(spec)
        conv = (cols.sm.n_luts + cols.abc.n_luts) / 2.0
        prop = cols.proposed.n_luts
        ratios.append(conv / prop)
        # proposed stays within the initial-to-conventional corridor
        assert cols.initial.n_luts <= cols.proposed.n_luts * 1.25
        assert cols.proposed.n_luts < conv
        # the mux network lands in routing: TCONs scale with the tap count
        assert cols.proposed.n_tcons > len(cols.offline.taps)
    avg = sum(ratios) / len(ratios)
    emit_json(
        results_dir,
        "table1_area",
        {
            "benchmarks": len(ratios),
            "avg_conventional_over_proposed": avg,
            "per_benchmark_ratios": ratios,
        },
    )
    assert 2.5 <= avg <= 5.0, f"avg conventional/proposed ratio {avg:.2f}"
