"""Ablation A2 — parameter-aware vs parameter-blind mapping.

Why TCONMap wins (DESIGN.md decision #3): mapping the *same* instrumented
netlist with the select inputs treated as ordinary signals (parameter-
blind) forces the whole mux network into LUTs.  This isolates the
contribution of parameter folding from everything else in the flow.
"""

from __future__ import annotations

from benchmarks.conftest import emit, emit_json
from repro.core.muxnet import build_trace_network
from repro.mapping import AbcMap, TconMap
from repro.util.tables import TextTable
from repro.workloads import generate_circuit, get_spec


def _run():
    t = TextTable(
        ["benchmark", "param-aware LUTs", "param-blind LUTs", "saving"],
        aligns="lrrr",
    )
    pairs = []
    for name in ("stereov.", "diffeq2"):
        spec = get_spec(name)
        net = generate_circuit(spec)
        initial = AbcMap().map(net)
        taps = sorted(initial.luts.keys()) + [l.q for l in net.latches]
        instr = build_trace_network(net, taps)
        aware = TconMap(
            params=instr.param_ids, taps=set(taps)
        ).map(instr.network)
        blind = AbcMap(forced_roots=frozenset(taps)).map(instr.network)
        t.add_row(
            [
                name,
                aware.n_luts,
                blind.n_luts,
                f"{blind.n_luts / max(1, aware.n_luts):.2f}x",
            ]
        )
        pairs.append((aware.n_luts, blind.n_luts))
    note = (
        "\n\nNote: this isolates the *parameter folding* mechanism alone "
        "(same netlist,\nno macro pinning, no triggers): it contributes a "
        "1.1-1.3x LUT saving by\nitself; the rest of the Table I gap comes "
        "from the conventional flow's\npre-synthesized debug macros and "
        "trigger units, quantified in T1."
    )
    return (
        "ABLATION A2 — PARAMETER-AWARE VS PARAMETER-BLIND CUTS\n"
        + t.render()
        + note,
        pairs,
    )


def test_ablation_param_cuts(benchmark, results_dir):
    text, pairs = benchmark.pedantic(
        _run, rounds=1, iterations=1, warmup_rounds=0
    )
    emit(results_dir, "ablation_param_cuts", text)
    emit_json(
        results_dir,
        "ablation_param_cuts",
        {
            "aware_vs_blind_luts": pairs,
            "savings": [blind / max(1, aware) for aware, blind in pairs],
        },
    )
    for aware, blind in pairs:
        assert blind > aware, "parameter folding must strictly save LUTs"
