"""Ablation A1 — trace-buffer input budget sweep.

DESIGN.md calls out the buffer-input count (B = #taps / 4 by default) as
the central instrumentation knob: more buffer inputs mean more signals per
debugging run but more TCONs and wiring.  This sweep quantifies that
trade-off on stereov.
"""

from __future__ import annotations

from benchmarks.conftest import emit, emit_json
from repro.core.muxnet import build_trace_network
from repro.mapping import AbcMap, TconMap
from repro.util.tables import TextTable
from repro.workloads import generate_circuit, get_spec


def _sweep():
    spec = get_spec("stereov.")
    net = generate_circuit(spec)
    initial = AbcMap().map(net)
    taps = sorted(initial.luts.keys()) + [l.q for l in net.latches]
    t = TextTable(
        ["buffer inputs", "signals/run", "LUTs", "TLUTs", "TCONs", "params"],
        aligns="rrrrrr",
    )
    rows = []
    for divisor in (2, 4, 8, 16):
        b = max(1, len(taps) // divisor)
        instr = build_trace_network(net, taps, n_buffer_inputs=b)
        tm = TconMap(
            params=instr.param_ids, taps=set(taps)
        ).map(instr.network)
        t.add_row(
            [
                b,
                b,
                tm.n_luts,
                tm.n_tluts,
                tm.n_tcons,
                len(instr.param_space),
            ]
        )
        rows.append((b, tm.n_tcons))
    return (
        "ABLATION A1 — TRACE-BUFFER INPUT BUDGET (stereov.)\n" + t.render(),
        rows,
    )


def test_ablation_mux_arity(benchmark, results_dir):
    text, rows = benchmark.pedantic(
        _sweep, rounds=1, iterations=1, warmup_rounds=0
    )
    emit(results_dir, "ablation_muxarity", text)
    emit_json(
        results_dir,
        "ablation_muxarity",
        {"tcons_per_budget": {str(b): t for b, t in rows}},
    )
    # rows sweep b from large to small; fewer buffer inputs → deeper trees
    # → more muxes → monotonically more TCONs
    tcons = [t for _b, t in rows]
    assert tcons == sorted(tcons), f"TCONs not monotone over budget: {tcons}"
