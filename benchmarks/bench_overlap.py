"""Experiment C3 — dataflow overlap of offline builds and online batches.

Through PR 6 the campaign runner was phase-barriered: every offline build
(pack/place/route of every design) had to land before the first online
lane batch launched, so the pool sat half-idle in both phases.  The
dataflow scheduler (``schedule="dataflow"``, the default) removes the
barrier — a design's lane batches launch the moment its last offline
segment lands, while other designs are still building — and this
benchmark measures exactly that: one cold 8-design campaign, run once
under the dataflow schedule and once behind the historical barrier, with
byte-identical outcomes required and the wall-clock ratio pinned.

Acceptance: on a multi-core host the scheduled campaign must finish in
<= 0.75x the barrier wall (>= 1.3x speedup, ``REPRO_OVERLAP_FLOOR``).
Single-core hosts cannot overlap processes, so — following the
``bench_offline`` / ``bench_campaign`` precedent — the floor is skipped
there with a note, while outcome parity is asserted unconditionally.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import emit, emit_json
from repro.campaign import CampaignConfig, run_campaign
from repro.workloads import campaign_spec, mutation_scenarios

OVERLAP_FLOOR = float(os.environ.get("REPRO_OVERLAP_FLOOR", "1.3"))
WORKERS = 4


def _cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@pytest.mark.slow
def test_overlap_vs_barrier(results_dir):
    """Cold 8-design campaign: dataflow schedule vs phase barrier."""
    spec = campaign_spec(
        "overlap-bench", n_gates=180, depth=8, n_pis=24, n_pos=12
    )
    # each mutation is its own design content — 8 distinct cold offline
    # builds, each feeding its own online lane batch
    scenarios = mutation_scenarios(spec, 8, seed=11, horizon=48)
    config = dict(
        workers=WORKERS, offline_workers=WORKERS, with_physical=True
    )

    barrier = run_campaign(
        scenarios,
        config=CampaignConfig(schedule="barrier", **config),
        cache=None,
    )
    dataflow = run_campaign(
        scenarios,
        config=CampaignConfig(schedule="dataflow", **config),
        cache=None,
    )
    assert dataflow.outcomes() == barrier.outcomes(), (
        "dataflow schedule changed results"
    )

    cores = _cores()
    speedup = barrier.wall_s / dataflow.wall_s
    conc = ", ".join(
        f"{name}={value:.2f}"
        for name, value in dataflow.stage_concurrency.items()
    )
    text = (
        "OFFLINE/ONLINE DATAFLOW OVERLAP (measured)\n"
        "8 distinct mutated designs, full offline stage (generic + "
        "pack/place/route + bitstream), cold, online lane batches\n\n"
        f"barrier schedule:     {barrier.wall_s:8.2f} s wall "
        f"({barrier.sched_wall_s:.2f} s task wall)\n"
        f"dataflow schedule:    {dataflow.wall_s:8.2f} s wall "
        f"({dataflow.sched_wall_s:.2f} s task wall)\n\n"
        f"speedup: {speedup:.2f}x  (floor: {OVERLAP_FLOOR:g}x on >= 4 "
        f"cores; host cores: {cores})\n"
        f"offline/online overlap: {100 * dataflow.overlap_ratio:.0f}% of "
        "the scheduled task wall\n"
        f"stage concurrency: {conc}\n"
        "outcomes: byte-identical to the barrier schedule\n"
    )
    emit(results_dir, "overlap_vs_barrier", text)
    emit_json(
        results_dir,
        "overlap",
        {
            "designs": 8,
            "workers": WORKERS,
            "barrier_wall_s": barrier.wall_s,
            "dataflow_wall_s": dataflow.wall_s,
            "barrier_sched_wall_s": barrier.sched_wall_s,
            "dataflow_sched_wall_s": dataflow.sched_wall_s,
            "speedup": speedup,
            "overlap_ratio": dataflow.overlap_ratio,
            "stage_concurrency": dataflow.stage_concurrency,
            "host_cores": cores,
        },
    )

    # overlapping processes needs processors: a single-core host time-
    # slices the same work either way, so the floor only binds where the
    # schedule can actually move the wall clock
    if cores >= 4:
        assert speedup >= OVERLAP_FLOOR, (
            f"dataflow schedule gained only {speedup:.2f}x over the "
            f"barrier (floor {OVERLAP_FLOOR:g}x)"
        )
    else:
        print(
            f"[overlap floor skipped: {cores} core(s) cannot overlap "
            "worker processes; outcome parity asserted]"
        )
