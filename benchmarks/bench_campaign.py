"""Experiment B1 — campaign-level amortization of the offline stage.

The paper's economics, measured at batch scale: a debug campaign of many
bug scenarios on one design pays the offline stage (generic + physical
back-end, §IV-A) once when artifacts are cached by content, versus once
*per scenario* cold.  The headline assertion is the acceptance criterion
of the campaign layer: ≥2× wall-clock speedup on a ≥8-scenario campaign
from offline-stage caching alone.

Also reports online-phase parallel scaling (worker pool vs serial) for
reference — on single-core CI runners the pool can't win, so no shape is
asserted there.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_json
from repro.campaign import CampaignConfig, OfflineCache, run_campaign
from repro.workloads import campaign_spec, stuck_at_scenarios

#: Combinational design (the physical back-end does not route latches yet)
#: sized so one full offline stage costs seconds while each online debug
#: loop costs a fraction of that — the regime the paper targets.
SPEC = campaign_spec("campaign-bench", n_gates=120, depth=8, n_pis=20, n_pos=10)
N_SCENARIOS = 8
HORIZON = 48


@pytest.fixture(scope="module")
def scenarios():
    return stuck_at_scenarios(SPEC, N_SCENARIOS, horizon=HORIZON)


@pytest.mark.slow
def test_campaign_cache_speedup(scenarios, results_dir):
    config = CampaignConfig(workers=1, with_physical=True)

    # cold: every scenario pays its own full offline stage
    cold = run_campaign(scenarios, config=config, cache=None)
    # cached: the first scenario builds, the other seven hit
    cache = OfflineCache()
    warm = run_campaign(scenarios, config=config, cache=cache)

    assert warm.outcomes() == cold.outcomes(), "caching changed results"
    assert cache.stats.misses == 1
    assert cache.stats.hits == N_SCENARIOS - 1
    statuses = {r.status for r in warm.results}
    assert "error" not in statuses and "undetected" not in statuses

    speedup = cold.wall_s / warm.wall_s
    text = (
        "CAMPAIGN OFFLINE-STAGE AMORTIZATION (measured)\n"
        f"{N_SCENARIOS}-scenario stuck-at campaign on "
        f"{SPEC.name} ({SPEC.n_gates} gates), full offline stage "
        "(generic + pack/place/route + bitstream)\n\n"
        f"cold (no cache):   {cold.wall_s:8.2f} s  "
        f"({cold.offline_total_s:.2f} s offline, "
        f"{cold.online_total_s:.2f} s online)\n"
        f"content-keyed cache: {warm.wall_s:6.2f} s  "
        f"({warm.offline_total_s:.2f} s offline, "
        f"{warm.online_total_s:.2f} s online)\n\n"
        f"cache-hit speedup: {speedup:.2f}x "
        f"({cache.stats.misses} build + {cache.stats.hits} hits)\n\n"
        "warm-campaign report:\n" + warm.render()
    )
    emit(results_dir, "campaign_cache_speedup", text)
    emit_json(
        results_dir,
        "campaign",
        {
            "scenarios": N_SCENARIOS,
            "cold_wall_s": cold.wall_s,
            "warm_wall_s": warm.wall_s,
            "cache_speedup": speedup,
            # per-stage offline build cost of the single warm-run build —
            # the physical-pipeline breakdown PR 5's rewrites target
            "offline_stage_s": {
                k: round(v, 3) for k, v in warm.offline_stage_s.items()
            },
            # supervision counters: a healthy bench run is all zeros;
            # nonzero retries/timeouts/respawns flag an unstable runner
            "resilience": warm.resilience(),
        },
    )

    assert speedup >= 2.0, (
        f"offline-stage caching gained only {speedup:.2f}x on a "
        f"{N_SCENARIOS}-scenario campaign"
    )


@pytest.mark.slow
def test_campaign_parallel_scaling(scenarios, results_dir):
    cache = OfflineCache()
    # pre-warm so both runs measure the online phase only
    run_campaign(scenarios[:1], config=CampaignConfig(workers=1), cache=cache)

    serial = run_campaign(
        scenarios, config=CampaignConfig(workers=1), cache=cache
    )
    pooled = run_campaign(
        scenarios, config=CampaignConfig(workers=4), cache=cache
    )
    assert serial.outcomes() == pooled.outcomes(), "worker pool changed results"

    ratio = serial.wall_s / pooled.wall_s if pooled.wall_s else 0.0
    text = (
        "CAMPAIGN ONLINE-PHASE PARALLEL SCALING (measured)\n"
        f"{N_SCENARIOS} online debug loops, offline artifact cached\n\n"
        f"serial:           {serial.wall_s:8.2f} s\n"
        f"4-worker pool:    {pooled.wall_s:8.2f} s\n"
        f"speedup:          {ratio:8.2f}x  "
        "(bounded by available cores; reference only)\n"
    )
    for note in pooled.notes:
        text += f"note: {note}\n"
    emit(results_dir, "campaign_parallel_scaling", text)
    emit_json(
        results_dir,
        "campaign",
        {
            "serial_wall_s": serial.wall_s,
            "pooled_wall_s": pooled.wall_s,
            "pool_speedup": ratio,
            "effective_workers": pooled.workers,
        },
    )
